// Command tracegen generates a workload's retire-order instruction trace
// and writes it in the repository's binary formats, so analyses can replay
// a trace many times without regenerating it (the paper's methodology
// collects traces once and studies them offline).
//
// The default output is the version-1 single-file stream format. With
// -shard-records N the output is a version-2 sharded store: a directory
// holding trace.idx plus chunk files of N records each, replayable with
// bounded memory and randomly accessible by chunk. -dump reads either
// format (a directory is treated as a store).
//
// Usage:
//
//	tracegen -workload "Web Apache" -n 10000000 -o apache.pift
//	tracegen -workload "Web Apache" -n 10000000 -shard-records 1000000 -o apache.store
//	tracegen -workload "Web Apache" -warmup 8000000 -n 2000000 -shard-records 1000000 -o apache.store
//	tracegen -source store -i apache.store -shard-records 250000 -o apache-fine.store
//	tracegen -source slice@8M:2M -i apache.store -o apache-window.store
//	tracegen -dump -i apache.pift | head
//	tracegen -dump -i apache.store | head
//
// With -warmup W the trace records W instructions as a separate executor
// phase before the -n instructions, matching the simulator's live
// warmup-then-measure call pattern: replaying such a store with
// "pifsim -trace ... -warmup W -measure N" is byte-identical to the live
// simulation.
//
// The -source flag selects where the records come from. The default,
// "live", executes the named workload. "store" replays an existing store
// (-i) into a new one — a re-shard, e.g. to a finer chunk size for
// distribution — preserving the recorded workload name and phase split.
// "slice@off:len" extracts only the record window [off, off+len) of the
// input store (located through the index, decoding no more chunks than
// the window touches) into a new store: the unit of work for shipping
// trace windows to other machines, and the on-disk twin of the
// simulator's slice-replay sources. Derived stores are always sharded
// (-shard-records 0 selects the default chunk size).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	pif "repro"
	"repro/internal/prof"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	wlName := flag.String("workload", "OLTP DB2", "workload name")
	source := flag.String("source", "live", "record source: live (execute -workload), store (re-shard the -i store), or slice@off:len (extract a window of the -i store)")
	n := flag.Uint64("n", 10_000_000, "instructions to generate")
	warmup := flag.Uint64("warmup", 0, "record this many warmup instructions as a separate executor phase before -n; a store recorded with -warmup W -n M replays byte-identically in 'pifsim -trace -warmup W -measure M'")
	out := flag.String("o", "", "output trace file or store directory (required unless -dump)")
	shard := flag.Uint64("shard-records", 0, "records per chunk of sharded output (live generation: 0 = a single-file trace; -source store/slice always derive a sharded store, 0 = default chunk size)")
	dump := flag.Bool("dump", false, "read a trace and print records as text")
	in := flag.String("i", "", "input trace file or store directory for -dump")
	limit := flag.Uint64("limit", 20, "records to print with -dump (0 = all)")
	var profile prof.Flags
	profile.Register(flag.CommandLine)
	flag.Parse()

	if err := profile.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		return 1
	}
	defer profile.Stop()

	if *dump {
		if err := dumpTrace(*in, *limit); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			return 1
		}
		return 0
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -o is required")
		return 1
	}
	if *source != "live" {
		// Deriving from an existing store: the generation flags would be
		// silently ignored, so reject explicit ones.
		for _, f := range []string{"workload", "n", "warmup"} {
			set := false
			flag.Visit(func(fl *flag.Flag) {
				if fl.Name == f {
					set = true
				}
			})
			if set {
				fmt.Fprintf(os.Stderr, "tracegen: -%s and -source %s are mutually exclusive (the input store defines the records)\n", f, *source)
				return 1
			}
		}
		if err := derive(*source, *in, *out, *shard); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			return 1
		}
		return 0
	}
	if err := generate(*wlName, *warmup, *n, *out, *shard); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		return 1
	}
	return 0
}

// derive writes a new sharded store from an existing one: a full
// re-shard for -source store, a window extraction for -source slice.
func derive(source, in, out string, shardRecords uint64) error {
	if in == "" {
		return fmt.Errorf("-source %s needs -i STORE", source)
	}
	ix, err := trace.ReadIndex(in)
	if err != nil {
		return err
	}
	var (
		it     trace.Iterator
		phases []uint64
		closer io.Closer
	)
	switch {
	case source == "store":
		r, err := trace.OpenStore(in)
		if err != nil {
			return err
		}
		it, closer = r, r
		// A pure re-shard preserves the recorded phase split: replay
		// compatibility checks keep working against the derived store.
		phases = ix.Phases
	case strings.HasPrefix(source, "slice@"):
		w, err := trace.ParseWindow(strings.TrimPrefix(source, "slice@"))
		if err != nil {
			return err
		}
		sr, err := trace.OpenSlice(in, w)
		if err != nil {
			return err
		}
		it, closer = sr, sr
		// A window has no meaningful relation to the recorded executor
		// phases; the derived store records none.
	default:
		return fmt.Errorf("unknown -source %q (have live, store, slice@off:len)", source)
	}
	n, err := trace.BuildStore(out, ix.Workload, shardRecords, it, phases...)
	if cerr := closer.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	outIx, err := trace.ReadIndex(out)
	if err != nil {
		return err
	}
	fmt.Printf("derived %d records for %q from %s to %s (%d chunk(s))\n",
		n, ix.Workload, in, out, len(outIx.Chunks))
	return nil
}

// recordSink is the write surface shared by the single-file Writer and
// the sharded StoreWriter.
type recordSink interface {
	Write(trace.Record) error
	Count() uint64
	Close() error
}

func generate(wlName string, warmup, n uint64, out string, shardRecords uint64) error {
	wl, err := pif.WorkloadByName(wlName)
	if err != nil {
		return err
	}
	prog, err := workload.BuildProgram(wl)
	if err != nil {
		return err
	}

	// The executor starts a fresh transaction at every Run call, so the
	// recorded stream reproduces the simulator's warmup/measure phase
	// pattern exactly when -warmup is given.
	phases := []uint64{n}
	if warmup > 0 {
		phases = []uint64{warmup, n}
	}

	var (
		sink recordSink
		f    *os.File
	)
	if shardRecords > 0 {
		sw, err := trace.CreateStore(out, wl.Name, shardRecords)
		if err != nil {
			return err
		}
		// Persist the phase split so a replay with a different
		// warmup/measure boundary is detected instead of silently
		// diverging from the live run.
		sw.SetPhases(phases...)
		sink = sw
	} else {
		f, err = os.Create(out)
		if err != nil {
			return err
		}
		sink, err = trace.NewWriter(f, wl.Name)
		if err != nil {
			f.Close()
			return err
		}
	}

	ex := workload.NewExecutor(prog)
	var writeErr error
	for _, phase := range phases {
		if writeErr != nil {
			break
		}
		ex.Run(phase, func(r trace.Record) {
			if writeErr = sink.Write(r); writeErr != nil {
				// A full disk won't get emptier: stop executing the
				// remaining instructions instead of dropping them one
				// by one against a dead writer.
				ex.Abort()
			}
		})
	}
	closeErr := sink.Close()
	if f != nil {
		if err := f.Close(); err != nil && closeErr == nil {
			closeErr = err
		}
	}
	if writeErr != nil {
		return writeErr
	}
	if closeErr != nil {
		return closeErr
	}
	if shardRecords > 0 {
		ix, err := trace.ReadIndex(out)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %d records for %q to %s (%d chunk(s), %d records/chunk)\n",
			sink.Count(), wl.Name, out, len(ix.Chunks), shardRecords)
		return nil
	}
	fmt.Printf("wrote %d records for %q to %s\n", sink.Count(), wl.Name, out)
	return nil
}

func dumpTrace(in string, limit uint64) error {
	if in == "" {
		return errors.New("-i is required with -dump")
	}
	fi, err := os.Stat(in)
	if err != nil {
		return err
	}
	if fi.IsDir() {
		return dumpStore(in, limit)
	}
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	fmt.Printf("# workload: %s\n", r.Workload())
	return dumpRecords(r, limit)
}

func dumpStore(in string, limit uint64) error {
	r, err := trace.OpenStore(in)
	if err != nil {
		return err
	}
	defer r.Close()
	h, ix := r.Header(), r.Index()
	fmt.Printf("# workload: %s\n", h.Workload)
	fmt.Printf("# store: %d records, %d chunk(s), %d records/chunk\n",
		h.Records, len(ix.Chunks), ix.ChunkTarget)
	return dumpRecords(r, limit)
}

func dumpRecords(it trace.Iterator, limit uint64) error {
	var count uint64
	for {
		rec, err := it.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		count++
		if limit == 0 || count <= limit {
			fmt.Printf("%d %v %v flags=%#x\n", count, rec.PC, rec.TL, rec.Flags)
		}
	}
	fmt.Printf("# %d records\n", count)
	return nil
}
