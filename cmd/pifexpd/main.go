// Command pifexpd runs the experiment service: a long-running daemon
// that accepts sweep specs over a versioned HTTP JSON API, queues them,
// executes each through the configured backend (a local worker pool or a
// pifcoord coordinator), and records every run in a persistent run
// database layered on the results store — one queryable corpus shared by
// every submitter.
//
// Usage:
//
//	pifexpd -listen :8078 -db results-svc
//	pifexpd -listen :8078 -db results-svc -backend remote@coord:8077 -tracedir traces
//	pifexpd -listen :8078 -db results-svc -auth-token SECRET
//
// The database directory holds one subdirectory per run: the service's
// exprun.json record (spec, queued→running→done/failed state machine,
// timings), and — once the run completes — the same run.json + artifact
// + jobs/ layout `experiments -out` writes, so any corpus tool (and
// `experiments diff`) reads service runs unchanged. Every file is
// written atomically and run.json last: a killed service never leaves a
// run directory that loads in a partial state, and on restart
// interrupted runs are requeued (or marked failed once their attempt
// budget is spent).
//
// With -auth-token every API request must carry the bearer token
// (health checks stay open); the same token is presented when dialing a
// token-protected coordinator. Submit and inspect runs with
// `experiments submit|status|diff -svc ADDR`.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/expsvc"
	"repro/internal/httpapi"
)

func main() {
	listen := flag.String("listen", ":8078", "address to serve the experiment-service API on")
	dbDir := flag.String("db", "results-svc", "run database directory (one subdirectory per run; reused across restarts)")
	backend := flag.String("backend", "local", "execution backend: local, or remote@ADDR (a pifcoord coordinator)")
	parallel := flag.Int("parallel", 0, "local worker pool size per run (0 = GOMAXPROCS)")
	traceDir := flag.String("tracedir", "", "trace-store pool: spill generated retire streams under this directory and replay them across runs")
	maxAttempts := flag.Int("max-attempts", expsvc.DefaultMaxAttempts, "executions per run before restart recovery marks it failed")
	authToken := flag.String("auth-token", "", "bearer token required on every API request (also presented to the remote backend coordinator; empty = open API)")
	flag.Parse()

	svc, err := expsvc.New(expsvc.Config{
		DBDir:        *dbDir,
		Backend:      *backend,
		BackendToken: *authToken,
		Parallel:     *parallel,
		StoreDir:     *traceDir,
		MaxAttempts:  *maxAttempts,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "pifexpd: "+format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pifexpd:", err)
		os.Exit(1)
	}

	handler := httpapi.RequireAuth(*authToken, expsvc.WireVersion, expsvc.NewServer(svc), "/v1/healthz")
	srv := &http.Server{Addr: *listen, Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		// Stop the executor first (a sweep in flight is canceled and its
		// record left running for the next incarnation's recovery), then
		// drain in-flight handlers.
		svc.Close()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()

	fmt.Fprintf(os.Stderr, "pifexpd: listening on %s (db %s, backend %s)\n", *listen, *dbDir, *backend)
	err = srv.ListenAndServe()
	if errors.Is(err, http.ErrServerClosed) {
		<-shutdownDone
		return
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pifexpd:", err)
		os.Exit(1)
	}
}
