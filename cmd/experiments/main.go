// Command experiments regenerates the paper's evaluation artifacts: every
// figure of Section 5 and the Table I configuration, printed as text tables
// in the same rows/series the paper reports.
//
// Simulation jobs fan out across cores (bounded by -parallel); rendered
// tables are byte-identical for every parallelism level. Ctrl-C cancels
// in-flight jobs.
//
// With -out DIR, the run is also stored as structured JSON (run.json plus
// one <artifact>.json per artifact, schema-versioned); "experiments diff"
// compares two stored runs metric by metric and exits nonzero on
// out-of-tolerance drift, so sweeps can be diffed across commits.
//
// Usage:
//
//	experiments [-run all|table1|fig2|fig3|fig7|fig8|fig9|fig10] [-quick]
//	            [-warmup N] [-measure N] [-parallel N] [-tracedir DIR]
//	            [-out DIR] [-v]
//	experiments diff [-abs X] [-rel Y] DIR_A DIR_B
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	pif "repro"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "diff" {
		os.Exit(diffMain(os.Args[2:]))
	}
	os.Exit(runMain())
}

func runMain() int {
	runID := flag.String("run", "all", "artifact to regenerate: all, or one of "+strings.Join(pif.ExperimentIDs(), ", "))
	quick := flag.Bool("quick", false, "reduced-scale run (shorter warmup and measurement)")
	warmup := flag.Uint64("warmup", 0, "override warmup instructions (0 = default)")
	measure := flag.Uint64("measure", 0, "override measured instructions (0 = default)")
	parallel := flag.Int("parallel", 0, "simulation worker pool size (0 = GOMAXPROCS)")
	traceDir := flag.String("tracedir", "", "spill generated retire streams to sharded trace stores under this directory and replay them (bounded memory; stores are reused across runs)")
	out := flag.String("out", "", "write structured JSON results into this directory (run.json + <artifact>.json)")
	verbose := flag.Bool("v", false, "print per-job timing as jobs complete")
	flag.Parse()

	opts := pif.DefaultExperimentOptions()
	if *quick {
		opts = pif.QuickExperimentOptions()
	}
	if *warmup > 0 {
		opts.WarmupInstrs = *warmup
	}
	if *measure > 0 {
		opts.MeasureInstrs = *measure
	}
	opts.Parallel = *parallel
	opts.TraceDir = *traceDir
	if *verbose {
		opts.OnProgress = func(p pif.JobProgress) {
			fmt.Fprintf(os.Stderr, "  [%3d/%3d] %-28s %8s\n",
				p.Done, p.Total, p.Label, p.Elapsed.Round(time.Millisecond))
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ids := []string{*runID}
	if *runID == "all" {
		ids = pif.ExperimentIDs()
	}

	env := pif.NewExperimentEnv(ctx, opts)
	workers := env.Parallel()
	start := time.Now()
	var (
		reports []pif.ExperimentReport
		timings []pif.ResultsTiming
	)
	for _, id := range ids {
		artStart := time.Now()
		rep, err := pif.RunExperimentIn(env, id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 1
		}
		reports = append(reports, rep)
		timings = append(timings, pif.ResultsTiming{ID: id, Nanos: int64(time.Since(artStart))})
	}
	total := time.Since(start)

	for _, rep := range reports {
		fmt.Printf("== %s: %s ==\n%s\n", rep.ID, rep.Title, rep.Text)
	}
	fmt.Println("artifact wall-clock:")
	for _, tm := range timings {
		fmt.Printf("  %-8s %8s\n", tm.ID, tm.Elapsed().Round(time.Millisecond))
	}
	fmt.Printf("(%d artifact(s) in %s; warmup=%d measure=%d instructions per workload; %d workers)\n",
		len(reports), total.Round(time.Millisecond),
		opts.WarmupInstrs, opts.MeasureInstrs, workers)

	if *out != "" {
		artifacts, err := pif.ExperimentArtifacts(reports)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 1
		}
		run := pif.ResultsRun{
			ID:         runName(*out),
			CreatedAt:  time.Now().UTC(),
			Options:    opts.RunOptions(),
			Timings:    timings,
			TotalNanos: int64(total),
		}
		if err := pif.SaveResults(*out, run, artifacts); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 1
		}
		fmt.Printf("(results stored in %s)\n", *out)
	}
	return 0
}

// runName derives a run ID from the output directory.
func runName(dir string) string {
	base := filepath.Base(filepath.Clean(dir))
	if base == "." || base == string(filepath.Separator) {
		return "run"
	}
	return base
}

// diffMain compares two stored runs and reports per-metric drift; it
// returns 1 when any metric is out of tolerance (the regression-gate exit
// code) and 2 on usage or load errors.
func diffMain(args []string) int {
	fs := flag.NewFlagSet("experiments diff", flag.ExitOnError)
	abs := fs.Float64("abs", 1e-12, "absolute tolerance per metric")
	rel := fs.Float64("rel", 1e-9, "relative tolerance per metric")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: experiments diff [-abs X] [-rel Y] DIR_A DIR_B")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	_, aArts, err := pif.LoadResults(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments diff:", err)
		return 2
	}
	_, bArts, err := pif.LoadResults(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments diff:", err)
		return 2
	}
	tol := pif.ResultsTolerances{Default: pif.ResultsTolerance{Abs: *abs, Rel: *rel}}
	d := pif.DiffResults(aArts, bArts, tol)
	fmt.Print(d.Render())
	if d.OutOfTolerance() {
		fmt.Printf("DRIFT: %s and %s differ beyond tolerance (abs %g, rel %g)\n",
			fs.Arg(0), fs.Arg(1), *abs, *rel)
		return 1
	}
	return 0
}
