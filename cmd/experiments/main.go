// Command experiments regenerates the paper's evaluation artifacts: every
// figure of Section 5, the Table I configuration, and the design-space
// sweep artifacts (sweep-history, sweep-l1), printed as text tables in the
// same rows/series the paper reports.
//
// Simulation jobs fan out across cores (bounded by -parallel); rendered
// tables are byte-identical for every parallelism level. Ctrl-C cancels
// in-flight jobs.
//
// With -out DIR, the run is also stored as structured JSON (run.json plus
// one <artifact>.json per artifact, schema-versioned) together with every
// raw per-job sim.Result collected from sweep grids (jobs/<key>.json, one
// per grid cell); "experiments diff" compares two stored runs metric by
// metric — per-job results included — and exits with a distinct code per
// failure class, so sweeps can be gated across commits.
//
// The sweep mode runs an ad-hoc design-space sweep declared on the
// command line: repeatable -axis flags name the axes (workload, engine,
// history, budget, l1, source, shards) and their values, the
// cross-product fans out through the execution backend, and -out
// persists one raw result per grid cell. A source axis (or the -source
// shorthand) selects where each cell's instruction stream comes from —
// live execution, the workload's spilled trace store (-tracedir), or a
// record window of a store ("slice@off:len", optionally "@DIR" for a
// store recorded by tracegen) — so sweeps fan out over trace slices
// without re-executing workloads. -shards K splits every replay cell
// into K window-shard jobs that fan out alongside the grid's other
// cells (local pool or remote backend alike) and are stitched back into
// the cell's result; cell keys and results are unchanged, so a sharded
// run diffs exit-0 against an unsharded one.
//
// Usage:
//
//	experiments [-run all|table1|fig2|...|sweep-history|sweep-window]
//	            [-quick] [-warmup N] [-measure N] [-parallel N]
//	            [-tracedir DIR] [-out DIR] [-v]
//	experiments sweep -axis name=v1,v2,... [-axis ...] [-source SPEC]
//	            [-shards K] [-quick] [-warmup N] [-measure N] [-parallel N]
//	            [-tracedir DIR] [-out DIR] [-v]
//	experiments diff [-abs X] [-rel Y] [-json] [-svc ADDR] A B
//	experiments submit -svc ADDR -axis name=v1,v2,... [sweep flags] [-wait]
//	experiments status -svc ADDR [-json] [RUN_ID ...]
//
// diff exit codes: 0 = within tolerance, 1 = metric drift beyond
// tolerance, 2 = usage or load error, 3 = artifact/job sets differ (a
// comparison-setup problem, not metric drift). -json emits the same
// verdict as a machine-readable report on stdout.
//
// The submit, status, and diff -svc modes are thin clients of a pifexpd
// experiment service: submit queues a sweep (the spec flags mean exactly
// what they mean under `experiments sweep`) and prints the run ID alone
// on stdout, status lists or follows runs, and diff -svc compares
// service runs — or a service run against a local -out directory, which
// is shipped inline — through the service's diff endpoint. -auth-token
// authenticates against a token-protected service or coordinator.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	pif "repro"
	"repro/internal/prof"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "diff":
			os.Exit(diffMain(os.Args[2:]))
		case "sweep":
			os.Exit(sweepMain(os.Args[2:]))
		case "submit":
			os.Exit(submitMain(os.Args[2:]))
		case "status":
			os.Exit(statusMain(os.Args[2:]))
		}
	}
	os.Exit(runMain())
}

// scaleFlags registers the options shared by the run and sweep modes.
// -tracedir is among them since the unified pipeline API: the run mode
// spills trace-based figure analyses through it, and the sweep mode
// resolves store/slice record sources against it. The profiling flags
// ride along too (-cpuprofile/-memprofile; callers Start after parsing
// and defer Stop).
func scaleFlags(fs *flag.FlagSet) (quick *bool, warmup, measure *uint64, parallel *int, traceDir, out, backend, authToken *string, verbose *bool, profile *prof.Flags) {
	quick = fs.Bool("quick", false, "reduced-scale run (shorter warmup and measurement)")
	warmup = fs.Uint64("warmup", 0, "override warmup instructions (0 = default)")
	measure = fs.Uint64("measure", 0, "override measured instructions (0 = default)")
	parallel = fs.Int("parallel", 0, "simulation worker pool size (0 = GOMAXPROCS)")
	backend = fs.String("backend", "local", "execution backend: local, or remote@ADDR (a pifcoord coordinator; jobs must be registry-resolvable — plain engine names, live or @DIR sources)")
	authToken = fs.String("auth-token", "", "bearer token for a token-protected remote coordinator (empty for an open one)")
	traceDir = fs.String("tracedir", "", "trace-store pool: spill generated retire streams to sharded stores under this directory and replay them (bounded memory; stores are reused across runs; env-backed store/slice sources slice these stores instead of the in-memory stream)")
	out = fs.String("out", "", "write structured JSON results into this directory (run.json + <artifact>.json + jobs/<key>.json)")
	verbose = fs.Bool("v", false, "print per-job timing as jobs complete")
	profile = new(prof.Flags)
	profile.Register(fs)
	return
}

// dialBackend resolves the -backend flag; a non-local backend is set on
// opts and returned for the caller to Close (nil for local, which lets
// the environment size private pools per grid).
func dialBackend(spec string, parallel int, token string, opts *pif.ExperimentOptions) (pif.Backend, error) {
	if spec == "" || spec == "local" {
		return nil, nil
	}
	b, err := pif.DialBackendAuth(spec, parallel, token)
	if err != nil {
		return nil, err
	}
	opts.Backend = b
	return b, nil
}

// buildOptions resolves the shared flags into experiment options.
func buildOptions(quick bool, warmup, measure uint64, parallel int, storeDir string, verbose bool) pif.ExperimentOptions {
	opts := pif.DefaultExperimentOptions()
	if quick {
		opts = pif.QuickExperimentOptions()
	}
	if warmup > 0 {
		opts.WarmupInstrs = warmup
	}
	if measure > 0 {
		opts.MeasureInstrs = measure
	}
	opts.Parallel = parallel
	opts.StoreDir = storeDir
	if verbose {
		opts.OnProgress = func(p pif.JobProgress) {
			fmt.Fprintf(os.Stderr, "  [%3d/%3d] %-40s %8s\n",
				p.Done, p.Total, p.Label, p.Elapsed.Round(time.Millisecond))
		}
	}
	return opts
}

func runMain() int {
	fs := flag.NewFlagSet("experiments", flag.ExitOnError)
	runID := fs.String("run", "all", "artifact to regenerate: all, or one of "+strings.Join(pif.ExperimentIDs(), ", "))
	quick, warmup, measure, parallel, traceDir, out, backend, authToken, verbose, profile := scaleFlags(fs)
	fs.Parse(os.Args[1:])

	if err := profile.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		return 1
	}
	defer profile.Stop()

	opts := buildOptions(*quick, *warmup, *measure, *parallel, *traceDir, *verbose)
	be, err := dialBackend(*backend, *parallel, *authToken, &opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		return 1
	}
	if be != nil {
		defer be.Close()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ids := []string{*runID}
	if *runID == "all" {
		ids = pif.ExperimentIDs()
	}

	env := pif.NewExperimentEnv(ctx, opts)
	workers := env.Parallel()
	start := time.Now()
	var (
		reports []pif.ExperimentReport
		timings []pif.ResultsTiming
	)
	for _, id := range ids {
		artStart := time.Now()
		rep, err := pif.RunExperimentIn(env, id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 1
		}
		reports = append(reports, rep)
		timings = append(timings, pif.ResultsTiming{ID: id, Nanos: int64(time.Since(artStart))})
	}
	total := time.Since(start)

	for _, rep := range reports {
		fmt.Printf("== %s: %s ==\n%s\n", rep.ID, rep.Title, rep.Text)
	}
	fmt.Println("artifact wall-clock:")
	for _, tm := range timings {
		fmt.Printf("  %-14s %8s\n", tm.ID, tm.Elapsed().Round(time.Millisecond))
	}
	fmt.Printf("(%d artifact(s) in %s; warmup=%d measure=%d instructions per workload; %d workers)\n",
		len(reports), total.Round(time.Millisecond),
		opts.WarmupInstrs, opts.MeasureInstrs, workers)

	if *out != "" {
		artifacts, err := pif.ExperimentArtifacts(reports)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 1
		}
		run := pif.ResultsRun{
			ID:         runName(*out),
			CreatedAt:  time.Now().UTC(),
			Options:    opts.RunOptions(),
			Timings:    timings,
			TotalNanos: int64(total),
		}
		if err := pif.SaveResults(*out, run, artifacts); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 1
		}
		jobs := env.JobResults()
		if err := pif.SaveJobResults(*out, jobs); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 1
		}
		fmt.Printf("(results stored in %s; %d raw per-job result(s) under %s)\n",
			*out, len(jobs), filepath.Join(*out, "jobs"))
	}
	return 0
}

// axisFlags collects repeatable -axis specifications.
type axisFlags []string

func (a *axisFlags) String() string     { return strings.Join(*a, "; ") }
func (a *axisFlags) Set(v string) error { *a = append(*a, v); return nil }

// sweepMain runs an ad-hoc design-space sweep declared with -axis flags.
func sweepMain(args []string) int {
	fs := flag.NewFlagSet("experiments sweep", flag.ExitOnError)
	var axes axisFlags
	fs.Var(&axes, "axis", "sweep axis as name=v1,v2,... (workload, engine, history, budget, l1, source, shards); repeatable, crossed in flag order")
	var engines axisFlags
	fs.Var(&engines, "engine", "engine spec name[:param=value,...] for the engine axis (repeatable; tuned specs sweep like names — mutually exclusive with -axis engine=...)")
	name := fs.String("name", "sweep", "sweep name (prefixes cell keys and job labels)")
	source := fs.String("source", "", "record source for every cell: live, store, slice@off:len, store@DIR, or slice@off:len@DIR (shorthand for a one-value source axis; store/slice without @DIR replay the workload's spilled store under -tracedir, or its in-memory stream when -tracedir is unset)")
	shards := fs.Int("shards", 0, "split every cell's replay into K window-shard jobs (cells need a replayable source, e.g. -source store; keys and results are unchanged, so sharded runs diff exit-0 against unsharded ones)")
	shardApprox := fs.Bool("shard-approx", false, "shard with fixed per-shard warmup instead of the exact offset scheme: linear total work, so shards speed the cell up, at the cost of approximate (not bit-exact) results")
	quick, warmup, measure, parallel, traceDir, out, backend, authToken, verbose, profile := scaleFlags(fs)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: experiments sweep -axis name=v1,v2,... [-axis ...] [-engine SPEC ...] [-source SPEC] [-shards K] [flags]")
		fs.PrintDefaults()
	}
	fs.Parse(args)

	if err := profile.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		return 1
	}
	defer profile.Stop()

	opts := buildOptions(*quick, *warmup, *measure, *parallel, *traceDir, *verbose)
	be, err := dialBackend(*backend, *parallel, *authToken, &opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments sweep:", err)
		return 1
	}
	if be != nil {
		defer be.Close()
	}
	if *source != "" {
		axes = append(axes, "source="+*source)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	env := pif.NewExperimentEnv(ctx, opts)
	spec, err := pif.BuildSweepSpec(env, *name, axes, engines)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments sweep:", err)
		fs.Usage()
		return 2
	}
	if *shards < 0 {
		fmt.Fprintln(os.Stderr, "experiments sweep: -shards must be >= 0")
		fs.Usage()
		return 2
	}
	spec.BaseShards = *shards
	spec.BaseShardApprox = *shardApprox
	start := time.Now()
	grid, err := env.RunGrid(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments sweep:", err)
		return 1
	}
	total := time.Since(start)

	summary, err := grid.Summary()
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments sweep:", err)
		return 1
	}
	fmt.Printf("== sweep %s: %d cells ==\n", spec.Name, grid.Size())
	fmt.Printf("%-52s %10s %10s %12s\n", "cell", "uipc", "coverage", "misses")
	for _, c := range summary.Cells {
		fmt.Printf("%-52s %10.4f %9.1f%% %12d\n", c.Label, c.UIPC, 100*c.Coverage, c.Misses)
	}
	fmt.Printf("(%d cell(s) in %s; warmup=%d measure=%d instructions per cell; %d workers)\n",
		grid.Size(), total.Round(time.Millisecond),
		opts.WarmupInstrs, opts.MeasureInstrs, env.Parallel())

	if *out != "" {
		art, err := pif.NewResultsArtifact(spec.Name, "ad-hoc design-space sweep", "", summary)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments sweep:", err)
			return 1
		}
		run := pif.ResultsRun{
			ID:         runName(*out),
			CreatedAt:  time.Now().UTC(),
			Options:    opts.RunOptions(),
			TotalNanos: int64(total),
		}
		if err := pif.SaveResults(*out, run, []pif.ResultsArtifact{art}); err != nil {
			fmt.Fprintln(os.Stderr, "experiments sweep:", err)
			return 1
		}
		jobs := env.JobResults()
		if err := pif.SaveJobResults(*out, jobs); err != nil {
			fmt.Fprintln(os.Stderr, "experiments sweep:", err)
			return 1
		}
		fmt.Printf("(results stored in %s; %d raw per-job result(s) under %s)\n",
			*out, len(jobs), filepath.Join(*out, "jobs"))
	}
	return 0
}

// runName derives a run ID from the output directory.
func runName(dir string) string {
	base := filepath.Base(filepath.Clean(dir))
	if base == "." || base == string(filepath.Separator) {
		return "run"
	}
	return base
}

// diffMain compares two stored runs — artifacts and raw per-job results —
// and reports per-metric drift. Exit codes separate the failure classes:
// 0 when the runs agree within tolerance, 1 on metric drift beyond
// tolerance (the regression-gate code), 2 on usage or load errors, and 3
// when the two runs hold different artifact or job sets (nothing to
// compare for the missing entries — a setup problem, not drift).
//
// Without -svc both sides are local run directories. With -svc each side
// is resolved independently: a path that loads as a run directory is
// shipped inline, anything else is taken as a service run ID — so a
// service run gates against a local -out baseline with one command.
func diffMain(args []string) int {
	fs := flag.NewFlagSet("experiments diff", flag.ExitOnError)
	abs := fs.Float64("abs", 1e-12, "absolute tolerance per metric")
	rel := fs.Float64("rel", 1e-9, "relative tolerance per metric")
	jsonOut := fs.Bool("json", false, "emit the machine-readable diff report (code, sides, diff, rendered text) as JSON on stdout")
	svc := fs.String("svc", "", "diff through the pifexpd experiment service at ADDR: each side is a service run ID, or a local run directory shipped inline")
	authToken := fs.String("auth-token", "", "bearer token for a token-protected service")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: experiments diff [-abs X] [-rel Y] [-json] [-svc ADDR [-auth-token T]] A B")
		fmt.Fprintln(os.Stderr, "exit codes: 0 within tolerance, 1 metric drift, 2 usage/load error, 3 artifact/job sets differ")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	nameA, nameB := fs.Arg(0), fs.Arg(1)
	tol := pif.ResultsTolerances{Default: pif.ResultsTolerance{Abs: *abs, Rel: *rel}}

	var rep pif.ResultsDiffReport
	if *svc != "" {
		client, err := pif.DialExperimentService(*svc, *authToken)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments diff:", err)
			return 2
		}
		sideA := diffSide(nameA)
		sideB := diffSide(nameB)
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		rep, err = client.Diff(ctx, sideA, sideB, *abs, *rel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments diff:", err)
			return 2
		}
	} else {
		_, aArts, err := pif.LoadResults(nameA)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments diff:", err)
			return 2
		}
		_, bArts, err := pif.LoadResults(nameB)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments diff:", err)
			return 2
		}
		aJobs, err := pif.LoadJobResults(nameA)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments diff:", err)
			return 2
		}
		bJobs, err := pif.LoadJobResults(nameB)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments diff:", err)
			return 2
		}
		d := pif.DiffResults(aArts, bArts, tol)
		d.Merge(pif.DiffJobResults(aJobs, bJobs, tol))
		rep = pif.NewResultsDiffReport(nameA, nameB, d)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "experiments diff:", err)
			return 2
		}
		return rep.Code
	}
	d := rep.Diff
	fmt.Print(rep.Text)
	switch {
	case d.HasMissing():
		fmt.Printf("MISSING: %s and %s hold different artifact/job sets (%d only in A, %d only in B); rerun both sides with the same artifacts before gating on drift\n",
			nameA, nameB, len(d.OnlyInA), len(d.OnlyInB))
		if d.HasDrift() {
			fmt.Println("(the common artifacts also drift beyond tolerance; fix the set mismatch first)")
		}
	case d.HasDrift():
		fmt.Printf("DRIFT: %s and %s differ beyond tolerance (abs %g, rel %g)\n",
			nameA, nameB, *abs, *rel)
	}
	return rep.Code
}

// diffSide resolves one diff argument for the service mode: a local run
// directory (anything pif.LoadResults accepts) becomes an inline side,
// anything else is passed through as a service run ID and resolved — or
// rejected — by the service.
func diffSide(arg string) pif.ServiceDiffSide {
	_, arts, err := pif.LoadResults(arg)
	if err != nil {
		return pif.ServiceDiffSide{RunID: arg}
	}
	side := pif.ServiceDiffSide{Label: arg, Artifacts: arts}
	if jobs, err := pif.LoadJobResults(arg); err == nil {
		side.Jobs = jobs
	}
	return side
}

// submitMain queues one sweep on an experiment service. The sweep-spec
// flags carry `experiments sweep` semantics verbatim — the service feeds
// them through the same spec parser. The new run's ID is printed alone
// on stdout (script-friendly); -wait follows the run to completion.
func submitMain(args []string) int {
	fs := flag.NewFlagSet("experiments submit", flag.ExitOnError)
	svc := fs.String("svc", "", "experiment service address (required)")
	authToken := fs.String("auth-token", "", "bearer token for a token-protected service")
	var axes axisFlags
	fs.Var(&axes, "axis", "sweep axis as name=v1,v2,... (workload, engine, history, budget, l1, source, shards); repeatable, crossed in flag order")
	var engines axisFlags
	fs.Var(&engines, "engine", "engine spec name[:param=value,...] for the engine axis (repeatable; mutually exclusive with -axis engine=...)")
	name := fs.String("name", "sweep", "sweep name (prefixes cell keys and job labels)")
	source := fs.String("source", "", "record source for every cell (shorthand for a one-value source axis)")
	shards := fs.Int("shards", 0, "split every cell's replay into K window-shard jobs")
	shardApprox := fs.Bool("shard-approx", false, "shard with fixed per-shard warmup (linear total work, approximate results)")
	quick := fs.Bool("quick", false, "reduced-scale run (shorter warmup and measurement)")
	warmup := fs.Uint64("warmup", 0, "override warmup instructions (0 = service default)")
	measure := fs.Uint64("measure", 0, "override measured instructions (0 = service default)")
	wait := fs.Bool("wait", false, "follow the run to completion (progress on stderr; exit 0 done, 1 failed)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: experiments submit -svc ADDR -axis name=v1,v2,... [-axis ...] [-engine SPEC ...] [flags] [-wait]")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if *svc == "" {
		fmt.Fprintln(os.Stderr, "experiments submit: -svc is required")
		fs.Usage()
		return 2
	}

	client, err := pif.DialExperimentService(*svc, *authToken)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments submit:", err)
		return 2
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	st, err := client.Submit(ctx, pif.ServiceRequest{
		Name:          *name,
		Axes:          axes,
		Engines:       engines,
		Source:        *source,
		Shards:        *shards,
		ShardApprox:   *shardApprox,
		Quick:         *quick,
		WarmupInstrs:  *warmup,
		MeasureInstrs: *measure,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments submit:", err)
		return 2
	}
	fmt.Println(st.ID)
	if !*wait {
		return 0
	}
	return followRun(ctx, client, st.ID)
}

// followRun long-polls one run to a terminal state, streaming moves to
// stderr; the exit code mirrors the run's outcome.
func followRun(ctx context.Context, client *pif.ServiceClient, id string) int {
	last := ""
	st, err := client.WaitRun(ctx, id, func(st pif.ServiceRunStatus) {
		line := fmt.Sprintf("%s %s", st.ID, st.State)
		if st.Total > 0 {
			line = fmt.Sprintf("%s [%d/%d]", line, st.Done, st.Total)
		}
		if line != last {
			fmt.Fprintln(os.Stderr, line)
			last = line
		}
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		return 2
	}
	if st.Error != "" {
		fmt.Fprintf(os.Stderr, "experiments: run %s failed: %s\n", st.ID, st.Error)
		return 1
	}
	return 0
}

// statusMain lists a service's runs, or reports (and with -wait follows)
// the named runs.
func statusMain(args []string) int {
	fs := flag.NewFlagSet("experiments status", flag.ExitOnError)
	svc := fs.String("svc", "", "experiment service address (required)")
	authToken := fs.String("auth-token", "", "bearer token for a token-protected service")
	jsonOut := fs.Bool("json", false, "emit statuses as JSON on stdout")
	wait := fs.Bool("wait", false, "follow the named runs to completion (exit 0 all done, 1 any failed)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: experiments status -svc ADDR [-json] [-wait RUN_ID ...]")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if *svc == "" {
		fmt.Fprintln(os.Stderr, "experiments status: -svc is required")
		fs.Usage()
		return 2
	}
	client, err := pif.DialExperimentService(*svc, *authToken)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments status:", err)
		return 2
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var sts []pif.ServiceRunStatus
	if fs.NArg() == 0 {
		if *wait {
			fmt.Fprintln(os.Stderr, "experiments status: -wait needs explicit run IDs")
			return 2
		}
		sts, err = client.Runs(ctx)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments status:", err)
			return 2
		}
	} else if *wait {
		code := 0
		for _, id := range fs.Args() {
			if c := followRun(ctx, client, id); c > code {
				code = c
			}
		}
		return code
	} else {
		for _, id := range fs.Args() {
			st, err := client.Run(ctx, id)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments status:", err)
				return 2
			}
			sts = append(sts, st)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sts); err != nil {
			fmt.Fprintln(os.Stderr, "experiments status:", err)
			return 2
		}
		return 0
	}
	fmt.Printf("%-28s %-8s %-20s %9s %10s  %s\n", "run", "state", "created", "jobs", "elapsed", "detail")
	for _, st := range sts {
		jobs := "-"
		if st.TotalJobs > 0 {
			jobs = fmt.Sprintf("%d", st.TotalJobs)
		} else if st.Total > 0 {
			jobs = fmt.Sprintf("%d/%d", st.Done, st.Total)
		}
		elapsed := "-"
		if st.ElapsedNanos > 0 {
			elapsed = time.Duration(st.ElapsedNanos).Round(time.Millisecond).String()
		}
		detail := st.Request.Name
		if st.Error != "" {
			detail = st.Error
		}
		fmt.Printf("%-28s %-8s %-20s %9s %10s  %s\n",
			st.ID, st.State, st.CreatedAt.UTC().Format("2006-01-02T15:04:05Z"), jobs, elapsed, detail)
	}
	return 0
}
