// Command experiments regenerates the paper's evaluation artifacts: every
// figure of Section 5 and the Table I configuration, printed as text tables
// in the same rows/series the paper reports.
//
// Simulation jobs fan out across cores (bounded by -parallel); rendered
// tables are byte-identical for every parallelism level. Ctrl-C cancels
// in-flight jobs.
//
// Usage:
//
//	experiments [-run all|table1|fig2|fig3|fig7|fig8|fig9|fig10] [-quick]
//	            [-warmup N] [-measure N] [-parallel N] [-v]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	pif "repro"
)

func main() {
	runID := flag.String("run", "all", "artifact to regenerate: all, or one of "+strings.Join(pif.ExperimentIDs(), ", "))
	quick := flag.Bool("quick", false, "reduced-scale run (shorter warmup and measurement)")
	warmup := flag.Uint64("warmup", 0, "override warmup instructions (0 = default)")
	measure := flag.Uint64("measure", 0, "override measured instructions (0 = default)")
	parallel := flag.Int("parallel", 0, "simulation worker pool size (0 = GOMAXPROCS)")
	verbose := flag.Bool("v", false, "print per-job timing as jobs complete")
	flag.Parse()

	opts := pif.DefaultExperimentOptions()
	if *quick {
		opts = pif.QuickExperimentOptions()
	}
	if *warmup > 0 {
		opts.WarmupInstrs = *warmup
	}
	if *measure > 0 {
		opts.MeasureInstrs = *measure
	}
	opts.Parallel = *parallel
	if *verbose {
		opts.OnProgress = func(p pif.JobProgress) {
			fmt.Fprintf(os.Stderr, "  [%3d/%3d] %-28s %8s\n",
				p.Done, p.Total, p.Label, p.Elapsed.Round(time.Millisecond))
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ids := []string{*runID}
	if *runID == "all" {
		ids = pif.ExperimentIDs()
	}

	env := pif.NewExperimentEnv(ctx, opts)
	workers := env.Parallel()
	start := time.Now()
	var reports []pif.ExperimentReport
	for _, id := range ids {
		artStart := time.Now()
		rep, err := pif.RunExperimentIn(env, id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "  == %s in %s ==\n", id, time.Since(artStart).Round(time.Millisecond))
		}
		reports = append(reports, rep)
	}
	for _, rep := range reports {
		fmt.Printf("== %s: %s ==\n%s\n", rep.ID, rep.Title, rep.Text)
	}
	fmt.Printf("(%d artifact(s) in %s; warmup=%d measure=%d instructions per workload; %d workers)\n",
		len(reports), time.Since(start).Round(time.Millisecond),
		opts.WarmupInstrs, opts.MeasureInstrs, workers)
}
