// Command experiments regenerates the paper's evaluation artifacts: every
// figure of Section 5 and the Table I configuration, printed as text tables
// in the same rows/series the paper reports.
//
// Usage:
//
//	experiments [-run all|table1|fig2|fig3|fig7|fig8|fig9|fig10] [-quick]
//	            [-warmup N] [-measure N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	pif "repro"
)

func main() {
	runID := flag.String("run", "all", "artifact to regenerate: all, or one of "+strings.Join(pif.ExperimentIDs(), ", "))
	quick := flag.Bool("quick", false, "reduced-scale run (shorter warmup and measurement)")
	warmup := flag.Uint64("warmup", 0, "override warmup instructions (0 = default)")
	measure := flag.Uint64("measure", 0, "override measured instructions (0 = default)")
	flag.Parse()

	opts := pif.DefaultExperimentOptions()
	if *quick {
		opts = pif.QuickExperimentOptions()
	}
	if *warmup > 0 {
		opts.WarmupInstrs = *warmup
	}
	if *measure > 0 {
		opts.MeasureInstrs = *measure
	}

	start := time.Now()
	var reports []pif.ExperimentReport
	var err error
	if *runID == "all" {
		reports, err = pif.RunAllExperiments(opts)
	} else {
		var rep pif.ExperimentReport
		rep, err = pif.RunExperiment(opts, *runID)
		reports = []pif.ExperimentReport{rep}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	for _, rep := range reports {
		fmt.Printf("== %s: %s ==\n%s\n", rep.ID, rep.Title, rep.Text)
	}
	fmt.Printf("(%d artifact(s) in %s; warmup=%d measure=%d instructions per workload)\n",
		len(reports), time.Since(start).Round(time.Millisecond), opts.WarmupInstrs, opts.MeasureInstrs)
}
