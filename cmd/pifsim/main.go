// Command pifsim runs workload/prefetcher simulations and prints the
// measured coverage, miss ratio, and UIPC — the unit of work every figure
// of the evaluation is built from.
//
// Both -workload and -prefetcher accept comma-separated lists (or "all");
// the cross product fans out as jobs over a worker pool (-parallel) with
// per-job wall-clock timing. A single job prints the full result detail.
//
// Engines are declarative specs: the repeatable -engine flag takes
// "name" or "name:param=value,..." (integer params accept K/M suffixes),
// validated against each engine's registered schema — run
// `pifsim -list-engines` to print every schema. The legacy -prefetcher
// name list plus tuning flags (-history, -sabs, -window, -degree)
// still works and folds into the same specs.
//
// Usage:
//
//	pifsim [-workload "OLTP DB2,Web Apache"|all] [-engine pif:budget_kb=32]
//	       [-engine tifs] [-parallel N] [-perfect] [-warmup N] [-measure N] [-v]
//	pifsim [-prefetcher pif,tifs|all] [-history N] [-sabs N] [-window N] [-degree N] ...
//	pifsim -trace apache.store [-engine pif,...] ...
//	pifsim -trace apache.store -source slice@8M:2M [-engine ...] ...
//	pifsim -list-engines
//
// The -source flag selects where the instruction stream comes from:
// "live" (default — execute the workload program), "store" (replay the
// sharded on-disk trace store named by -trace from record 0; implied by
// -trace alone), or "slice@off:len" (replay only the record window
// [off, off+len) of the store, located through the store index without
// decoding the prefix — off and len accept K/M suffixes). Replay jobs
// stream the trace chunk by chunk (peak memory one chunk, not the trace
// length); the replayed range must hold at least warmup+measure records.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	pif "repro"
	"repro/internal/prof"
)

func main() {
	os.Exit(run())
}

func run() int {
	wlNames := flag.String("workload", "OLTP DB2", "comma-separated workload names, or \"all\" (see -list)")
	traceDir := flag.String("trace", "", "replay a sharded trace store directory instead of executing a workload")
	sourceSpec := flag.String("source", "", "record source: live, store, or slice@off:len (store and slice replay the -trace store; default live, or store when -trace is set)")
	list := flag.Bool("list", false, "list workloads and prefetchers and exit")
	listEngines := flag.Bool("list-engines", false, "print every engine's parameter schema and exit")
	pfNames := flag.String("prefetcher", "pif", "comma-separated prefetchers (pif, tifs, nextline, none, ...), or \"all\"")
	var engineSpecs engineFlags
	flag.Var(&engineSpecs, "engine", "engine spec name[:param=value,...] (repeatable; replaces -prefetcher and the tuning flags)")
	parallel := flag.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS)")
	perfect := flag.Bool("perfect", false, "simulate the perfect-latency L1 bound")
	warmup := flag.Uint64("warmup", 8_000_000, "warmup instructions")
	measure := flag.Uint64("measure", 2_000_000, "measured instructions")
	history := flag.Int("history", 0, "PIF history buffer regions (0 = paper default 32K)")
	sabs := flag.Int("sabs", 0, "PIF stream address buffers (0 = paper default 4)")
	window := flag.Int("window", 0, "PIF SAB window regions (0 = paper default 7)")
	degree := flag.Int("degree", 4, "next-line prefetch degree")
	backendSpec := flag.String("backend", "local", "execution backend: local, or remote@ADDR (a pifcoord coordinator; jobs run on its worker fleet)")
	authToken := flag.String("auth-token", "", "bearer token for a token-protected remote coordinator (empty for an open one)")
	shards := flag.Int("shards", 1, "split a store replay into N parallel windows and stitch the results (needs -trace)")
	exact := flag.Bool("exact", false, "sharded replay: measure each shard as a clock delta on the full trace prefix, so every counter — timing included — matches sequential replay bit for bit (parity mode; the last shard replays the whole trace, so expect no speedup)")
	verbose := flag.Bool("v", false, "print full result struct (single job) or per-job progress")
	var profile prof.Flags
	profile.Register(flag.CommandLine)
	flag.Parse()

	if err := profile.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "pifsim:", err)
		return 1
	}
	defer profile.Stop()

	if *list {
		fmt.Println("workloads:")
		for _, w := range pif.Workloads() {
			fmt.Println("  " + w.Name)
		}
		fmt.Println("prefetchers:")
		for _, n := range pif.PrefetcherNames() {
			fmt.Println("  " + n)
		}
		return 0
	}
	if *listEngines {
		for i, sch := range pif.EngineSchemas() {
			if i > 0 {
				fmt.Println()
			}
			fmt.Print(sch.Describe())
		}
		return 0
	}

	if len(engineSpecs) > 0 {
		// -engine carries its own tuning; mixing it with the legacy
		// name+knob flags would silently ignore one of them.
		var conflict string
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "prefetcher", "history", "sabs", "window", "degree":
				conflict = f.Name
			}
		})
		if conflict != "" {
			fmt.Fprintf(os.Stderr, "pifsim: -engine and -%s are mutually exclusive (fold the tuning into the engine spec)\n", conflict)
			return 1
		}
	}
	engines, err := resolveEngines(engineSpecs, *pfNames, *history, *sabs, *window, *degree)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pifsim:", err)
		return 1
	}

	cfg := pif.DefaultSimConfig()
	cfg.WarmupInstrs = *warmup
	cfg.MeasureInstrs = *measure
	cfg.PerfectL1 = *perfect

	// Resolve the record source: -trace alone implies a full-store
	// replay; -source store/slice requires the store.
	src := *sourceSpec
	if src == "" {
		src = "live"
		if *traceDir != "" {
			src = "store"
		}
	}
	var win *pif.TraceWindow
	switch {
	case src == "live":
		if *traceDir != "" {
			fmt.Fprintln(os.Stderr, "pifsim: -source live contradicts -trace (drop one)")
			return 1
		}
	case src == "store":
	case strings.HasPrefix(src, "slice@"):
		w, werr := pif.ParseTraceWindow(strings.TrimPrefix(src, "slice@"))
		if werr != nil {
			fmt.Fprintln(os.Stderr, "pifsim:", werr)
			return 1
		}
		win = &w
	default:
		fmt.Fprintf(os.Stderr, "pifsim: unknown -source %q (have live, store, slice@off:len)\n", src)
		return 1
	}

	if *shards > 1 {
		if src != "store" {
			fmt.Fprintln(os.Stderr, "pifsim: -shards needs a full-store replay (-trace DIR without -source slice)")
			return 1
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		if err := shardedRun(ctx, *traceDir, cfg, engines, *shards, *exact, *perfect, *verbose, *backendSpec, *authToken, *parallel); err != nil {
			fmt.Fprintln(os.Stderr, "pifsim:", err)
			return 1
		}
		return 0
	}
	if *exact {
		fmt.Fprintln(os.Stderr, "pifsim: -exact only applies to sharded replay (-shards N)")
		return 1
	}

	var jobs []pif.Job
	if src != "live" {
		if *traceDir == "" {
			fmt.Fprintf(os.Stderr, "pifsim: -source %s needs -trace DIR\n", src)
			return 1
		}
		// The store names the workload; an explicit -workload alongside
		// -trace would be silently ignored, so reject the combination.
		workloadSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "workload" {
				workloadSet = true
			}
		})
		if workloadSet {
			fmt.Fprintln(os.Stderr, "pifsim: -workload and -trace are mutually exclusive (the store names its workload)")
			return 1
		}
		jobs, err = traceJobs(*traceDir, win, cfg, engines)
	} else {
		var workloads []pif.Workload
		workloads, err = resolveWorkloads(*wlNames)
		for _, wl := range workloads {
			for _, eng := range engines {
				jobs = append(jobs, eng.job(wl.Name+"/"+eng.name, wl, cfg, nil))
			}
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pifsim:", err)
		return 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	backend, err := pif.DialBackendAuth(*backendSpec, *parallel, *authToken)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pifsim:", err)
		return 1
	}
	defer backend.Close()
	var onProgress pif.JobProgressFunc
	if *verbose && len(jobs) > 1 {
		onProgress = func(p pif.JobProgress) {
			fmt.Fprintf(os.Stderr, "  [%3d/%3d] %-32s %8s\n",
				p.Done, p.Total, p.Label, p.Elapsed.Round(time.Millisecond))
		}
	}

	start := time.Now()
	results, err := pif.RunJobsOn(ctx, backend, jobs, onProgress)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pifsim:", err)
		return 1
	}

	if len(results) == 1 {
		printDetail(results[0], *perfect, *verbose)
		return 0
	}
	fmt.Printf("%-14s %-14s %8s %8s %8s %10s\n",
		"workload", "prefetcher", "UIPC", "missrat", "coverage", "time")
	for _, r := range results {
		fmt.Printf("%-14s %-14s %8.4f %8.4f %7.1f%% %10s\n",
			r.Sim.Workload, r.Sim.Prefetcher, r.Sim.UIPC, r.Sim.MissRatio(),
			r.Sim.Coverage()*100, r.Elapsed.Round(time.Millisecond))
	}
	fmt.Printf("(%d job(s) in %s wall-clock)\n", len(results), time.Since(start).Round(time.Millisecond))
	return 0
}

// engineFlags collects repeatable -engine spec strings.
type engineFlags []string

func (e *engineFlags) String() string     { return strings.Join(*e, ",") }
func (e *engineFlags) Set(v string) error { *e = append(*e, v); return nil }

// engine pairs a display name with its declarative spec. Every engine —
// tuned or not — is a validated spec, so every engine ships to every
// backend (including remote) identically.
type engine struct {
	name string
	spec pif.EngineSpec
}

// job builds the engine's job for one workload/config/source.
func (e engine) job(label string, wl pif.Workload, cfg pif.SimConfig, src pif.Source) pif.Job {
	return pif.Job{Label: label, Workload: wl, Config: cfg, Source: src, Engine: e.spec}
}

// shardedRun replays the store at dir once per engine, each time split
// into the requested number of parallel windows and stitched back into
// one whole-run result (pif.ShardedReplay). The store names the workload
// and must carry a phase split compatible with the requested
// warmup/measure interval, exactly as a sequential store replay would.
func shardedRun(ctx context.Context, dir string, cfg pif.SimConfig, engines []engine, shards int, exact, perfect, verbose bool, backendSpec, authToken string, parallel int) error {
	ix, err := pif.ReadTraceIndex(dir)
	if err != nil {
		return err
	}
	// A remote backend is dialed once and shared across engines; local
	// stays nil so ShardedReplay sizes a private pool per replay.
	var backend pif.Backend
	if backendSpec != "" && backendSpec != "local" {
		backend, err = pif.DialBackendAuth(backendSpec, parallel, authToken)
		if err != nil {
			return err
		}
		defer backend.Close()
	}
	wl, err := pif.WorkloadByName(ix.Workload)
	if err != nil {
		return fmt.Errorf("trace store %s: %w", dir, err)
	}
	if !ix.PhaseCompatible(cfg.WarmupInstrs, cfg.MeasureInstrs) {
		return fmt.Errorf(
			"trace store %s was recorded with phase split %v; replaying -warmup %d -measure %d would silently diverge from a live run",
			dir, ix.Phases, cfg.WarmupInstrs, cfg.MeasureInstrs)
	}
	mode := "approx"
	if exact {
		mode = "exact"
	}
	for i, eng := range engines {
		start := time.Now()
		opt := pif.ShardedReplayOptions{
			Dir:      dir,
			Workload: wl,
			Config:   cfg,
			Shards:   shards,
			Exact:    exact,
			Backend:  backend,
			Engine:   eng.spec,
		}
		res, err := pif.ShardedReplay(ctx, opt)
		if err != nil {
			return fmt.Errorf("%s: %w", eng.name, err)
		}
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("sharded replay: %d windows (%s warmup), %s wall-clock\n",
			shards, mode, time.Since(start).Round(time.Millisecond))
		printDetail(pif.JobResult{Sim: res.Merged, Elapsed: time.Since(start)}, perfect, verbose)
		if verbose {
			for k, p := range res.Plans {
				fmt.Printf("  shard %d: window %s warmup %d offset %d measure %d uipc %.4f\n",
					k, p.Window, p.WarmupInstrs, p.MeasureOffsetInstrs, p.MeasureInstrs, res.Shards[k].UIPC)
			}
		}
	}
	return nil
}

// traceJobs builds one replay job per engine over the sharded store at
// dir (full-store replay, or one record window when window is non-nil).
// The store names the workload (its profile supplies the front-end
// seed); jobs carry a Source factory, so every job opens a private
// reader and jobs fan out concurrently over the same trace.
func traceJobs(dir string, window *pif.TraceWindow, cfg pif.SimConfig, engines []engine) ([]pif.Job, error) {
	ix, err := pif.ReadTraceIndex(dir)
	if err != nil {
		return nil, err
	}
	wl, err := pif.WorkloadByName(ix.Workload)
	if err != nil {
		return nil, fmt.Errorf("trace store %s: %w", dir, err)
	}
	need := cfg.WarmupInstrs + cfg.MeasureInstrs
	var source pif.Source
	label := "(trace)"
	if window != nil {
		// A slice is its own experiment — the window, not the recorded
		// phase split, defines what is replayed — so only the window's
		// record budget is validated here.
		if err := ix.CheckWindow(*window); err != nil {
			return nil, err
		}
		if window.Len < need {
			return nil, fmt.Errorf("window %s holds %d records, need %d (warmup+measure)",
				window, window.Len, need)
		}
		source = pif.SliceSource(dir, *window)
		label = fmt.Sprintf("(slice@%s)", window)
	} else {
		if ix.Records() < need {
			return nil, fmt.Errorf("trace store %s holds %d records, need %d (warmup+measure)",
				dir, ix.Records(), need)
		}
		if !ix.PhaseCompatible(cfg.WarmupInstrs, cfg.MeasureInstrs) {
			return nil, fmt.Errorf(
				"trace store %s was recorded with phase split %v; replaying -warmup %d -measure %d would silently diverge from a live run (re-record with tracegen -warmup %d, or match the recorded split)",
				dir, ix.Phases, cfg.WarmupInstrs, cfg.MeasureInstrs, cfg.WarmupInstrs)
		}
		source = pif.StoreSource(dir)
	}
	var jobs []pif.Job
	for _, eng := range engines {
		jobs = append(jobs, eng.job(wl.Name+label+"/"+eng.name, wl, cfg, source))
	}
	return jobs, nil
}

// resolveWorkloads expands the -workload flag.
func resolveWorkloads(names string) ([]pif.Workload, error) {
	if names == "all" {
		return pif.Workloads(), nil
	}
	var out []pif.Workload
	for _, name := range strings.Split(names, ",") {
		wl, err := pif.WorkloadByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, wl)
	}
	return out, nil
}

// resolveEngines builds the engine list: explicit -engine specs when
// given, otherwise the legacy -prefetcher names with the tuning flags
// folded into the equivalent specs. Every spec is validated up front so
// a typo fails before any job runs.
func resolveEngines(specs []string, names string, history, sabs, window, degree int) ([]engine, error) {
	if len(specs) > 0 {
		var out []engine
		for _, s := range specs {
			sp, err := pif.ParseEngineSpec(s)
			if err != nil {
				return nil, err
			}
			out = append(out, engine{sp.String(), sp})
		}
		return out, nil
	}
	if names == "all" {
		names = strings.Join(pif.PrefetcherNames(), ",")
	}
	var out []engine
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		spec := pif.EngineSpec{Name: name}
		switch name {
		case "pif":
			if history > 0 {
				// -history tunes only the history capacity: pin the index
				// at its default so the schema's history/4 derivation does
				// not resize it (matching the historical flag semantics).
				spec = spec.With("history", float64(history)).
					With("index", float64(pif.DefaultPIFConfig().IndexEntries))
			}
			if sabs > 0 {
				spec = spec.With("sabs", float64(sabs))
			}
			if window > 0 {
				spec = spec.With("window", float64(window))
			}
		case "nextline":
			spec = spec.With("degree", float64(degree))
		}
		if err := pif.ValidateEngineSpec(spec); err != nil {
			return nil, err
		}
		out = append(out, engine{name, spec})
	}
	return out, nil
}

// printDetail prints the single-job report (the historical pifsim output).
func printDetail(r pif.JobResult, perfect, verbose bool) {
	res := r.Sim
	fmt.Printf("workload    %s\n", res.Workload)
	fmt.Printf("prefetcher  %s (perfect L1: %v)\n", res.Prefetcher, perfect)
	fmt.Printf("instructions %d  cycles %d  UIPC %.4f\n", res.Instructions, res.Cycles, res.UIPC)
	fmt.Printf("fetch: %d correct-path accesses, %d misses (ratio %.4f)\n",
		res.CorrectAccesses, res.CorrectMisses, res.MissRatio())
	fmt.Printf("prefetch: %d issued, %d useful (coverage %.1f%%)\n",
		res.PrefetchesIssued, res.CoveredMisses, res.Coverage()*100)
	fmt.Printf("stall cycles %d\n", res.StallCycles)
	fmt.Printf("wall-clock  %s\n", r.Elapsed.Round(time.Millisecond))
	if verbose {
		fmt.Printf("\nL1: %+v\nfront-end: %+v\n", res.L1, res.FE)
	}
}
