// Command pifsim runs workload/prefetcher simulations and prints the
// measured coverage, miss ratio, and UIPC — the unit of work every figure
// of the evaluation is built from.
//
// Both -workload and -prefetcher accept comma-separated lists (or "all");
// the cross product fans out as jobs over a worker pool (-parallel) with
// per-job wall-clock timing. A single job prints the full result detail.
//
// Usage:
//
//	pifsim [-workload "OLTP DB2,Web Apache"|all] [-prefetcher pif,tifs|all]
//	       [-parallel N] [-perfect] [-warmup N] [-measure N] [-history N]
//	       [-sabs N] [-window N] [-degree N] [-v]
//	pifsim -trace apache.store [-prefetcher pif,tifs|all] ...
//	pifsim -trace apache.store -source slice@8M:2M [-prefetcher ...] ...
//
// The -source flag selects where the instruction stream comes from:
// "live" (default — execute the workload program), "store" (replay the
// sharded on-disk trace store named by -trace from record 0; implied by
// -trace alone), or "slice@off:len" (replay only the record window
// [off, off+len) of the store, located through the store index without
// decoding the prefix — off and len accept K/M suffixes). Replay jobs
// stream the trace chunk by chunk (peak memory one chunk, not the trace
// length); the replayed range must hold at least warmup+measure records.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	pif "repro"
	"repro/internal/prof"
)

func main() {
	os.Exit(run())
}

func run() int {
	wlNames := flag.String("workload", "OLTP DB2", "comma-separated workload names, or \"all\" (see -list)")
	traceDir := flag.String("trace", "", "replay a sharded trace store directory instead of executing a workload")
	sourceSpec := flag.String("source", "", "record source: live, store, or slice@off:len (store and slice replay the -trace store; default live, or store when -trace is set)")
	list := flag.Bool("list", false, "list workloads and prefetchers and exit")
	pfNames := flag.String("prefetcher", "pif", "comma-separated prefetchers (pif, tifs, nextline, none, ...), or \"all\"")
	parallel := flag.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS)")
	perfect := flag.Bool("perfect", false, "simulate the perfect-latency L1 bound")
	warmup := flag.Uint64("warmup", 8_000_000, "warmup instructions")
	measure := flag.Uint64("measure", 2_000_000, "measured instructions")
	history := flag.Int("history", 0, "PIF history buffer regions (0 = paper default 32K)")
	sabs := flag.Int("sabs", 0, "PIF stream address buffers (0 = paper default 4)")
	window := flag.Int("window", 0, "PIF SAB window regions (0 = paper default 7)")
	degree := flag.Int("degree", 4, "next-line prefetch degree")
	backendSpec := flag.String("backend", "local", "execution backend: local, or remote@ADDR (a pifcoord coordinator; jobs run on its worker fleet)")
	shards := flag.Int("shards", 1, "split a store replay into N parallel windows and stitch the results (needs -trace)")
	exact := flag.Bool("exact", false, "sharded replay: warm every shard with the full trace prefix so counters match sequential replay exactly")
	verbose := flag.Bool("v", false, "print full result struct (single job) or per-job progress")
	var profile prof.Flags
	profile.Register(flag.CommandLine)
	flag.Parse()

	if err := profile.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "pifsim:", err)
		return 1
	}
	defer profile.Stop()

	if *list {
		fmt.Println("workloads:")
		for _, w := range pif.Workloads() {
			fmt.Println("  " + w.Name)
		}
		fmt.Println("prefetchers:")
		for _, n := range pif.PrefetcherNames() {
			fmt.Println("  " + n)
		}
		return 0
	}

	engines, err := resolveEngines(*pfNames, *history, *sabs, *window, *degree)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pifsim:", err)
		return 1
	}

	cfg := pif.DefaultSimConfig()
	cfg.WarmupInstrs = *warmup
	cfg.MeasureInstrs = *measure
	cfg.PerfectL1 = *perfect

	// Resolve the record source: -trace alone implies a full-store
	// replay; -source store/slice requires the store.
	src := *sourceSpec
	if src == "" {
		src = "live"
		if *traceDir != "" {
			src = "store"
		}
	}
	var win *pif.TraceWindow
	switch {
	case src == "live":
		if *traceDir != "" {
			fmt.Fprintln(os.Stderr, "pifsim: -source live contradicts -trace (drop one)")
			return 1
		}
	case src == "store":
	case strings.HasPrefix(src, "slice@"):
		w, werr := pif.ParseTraceWindow(strings.TrimPrefix(src, "slice@"))
		if werr != nil {
			fmt.Fprintln(os.Stderr, "pifsim:", werr)
			return 1
		}
		win = &w
	default:
		fmt.Fprintf(os.Stderr, "pifsim: unknown -source %q (have live, store, slice@off:len)\n", src)
		return 1
	}

	if *shards > 1 {
		if src != "store" {
			fmt.Fprintln(os.Stderr, "pifsim: -shards needs a full-store replay (-trace DIR without -source slice)")
			return 1
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		if err := shardedRun(ctx, *traceDir, cfg, engines, *shards, *exact, *perfect, *verbose, *backendSpec, *parallel); err != nil {
			fmt.Fprintln(os.Stderr, "pifsim:", err)
			return 1
		}
		return 0
	}
	if *exact {
		fmt.Fprintln(os.Stderr, "pifsim: -exact only applies to sharded replay (-shards N)")
		return 1
	}

	var jobs []pif.Job
	if src != "live" {
		if *traceDir == "" {
			fmt.Fprintf(os.Stderr, "pifsim: -source %s needs -trace DIR\n", src)
			return 1
		}
		// The store names the workload; an explicit -workload alongside
		// -trace would be silently ignored, so reject the combination.
		workloadSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "workload" {
				workloadSet = true
			}
		})
		if workloadSet {
			fmt.Fprintln(os.Stderr, "pifsim: -workload and -trace are mutually exclusive (the store names its workload)")
			return 1
		}
		jobs, err = traceJobs(*traceDir, win, cfg, engines)
	} else {
		var workloads []pif.Workload
		workloads, err = resolveWorkloads(*wlNames)
		for _, wl := range workloads {
			for _, eng := range engines {
				jobs = append(jobs, eng.job(wl.Name+"/"+eng.name, wl, cfg, nil))
			}
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pifsim:", err)
		return 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	backend, err := pif.DialBackend(*backendSpec, *parallel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pifsim:", err)
		return 1
	}
	defer backend.Close()
	var onProgress pif.JobProgressFunc
	if *verbose && len(jobs) > 1 {
		onProgress = func(p pif.JobProgress) {
			fmt.Fprintf(os.Stderr, "  [%3d/%3d] %-32s %8s\n",
				p.Done, p.Total, p.Label, p.Elapsed.Round(time.Millisecond))
		}
	}

	start := time.Now()
	results, err := pif.RunJobsOn(ctx, backend, jobs, onProgress)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pifsim:", err)
		return 1
	}

	if len(results) == 1 {
		printDetail(results[0], *perfect, *verbose)
		return 0
	}
	fmt.Printf("%-14s %-14s %8s %8s %8s %10s\n",
		"workload", "prefetcher", "UIPC", "missrat", "coverage", "time")
	for _, r := range results {
		fmt.Printf("%-14s %-14s %8.4f %8.4f %7.1f%% %10s\n",
			r.Sim.Workload, r.Sim.Prefetcher, r.Sim.UIPC, r.Sim.MissRatio(),
			r.Sim.Coverage()*100, r.Elapsed.Round(time.Millisecond))
	}
	fmt.Printf("(%d job(s) in %s wall-clock)\n", len(results), time.Since(start).Round(time.Millisecond))
	return 0
}

// engine pairs a display name with a fresh-instance factory. registry is
// the prefetch-registry name when the engine is exactly a registry entry
// (no CLI tuning applied) — the form a remote backend can ship; tuned
// engines carry only the local factory closure.
type engine struct {
	name     string
	registry string
	factory  func() pif.Prefetcher
}

// job builds the engine's job for one workload/config/source. Registry
// engines travel by name so any backend (including remote) can resolve
// them; tuned engines embed the factory and are local-only.
func (e engine) job(label string, wl pif.Workload, cfg pif.SimConfig, src pif.Source) pif.Job {
	j := pif.Job{Label: label, Workload: wl, Config: cfg, Source: src}
	if e.registry != "" {
		j.PrefetcherName = e.registry
	} else {
		j.NewPrefetcher = e.factory
	}
	return j
}

// shardedRun replays the store at dir once per engine, each time split
// into the requested number of parallel windows and stitched back into
// one whole-run result (pif.ShardedReplay). The store names the workload
// and must carry a phase split compatible with the requested
// warmup/measure interval, exactly as a sequential store replay would.
func shardedRun(ctx context.Context, dir string, cfg pif.SimConfig, engines []engine, shards int, exact, perfect, verbose bool, backendSpec string, parallel int) error {
	ix, err := pif.ReadTraceIndex(dir)
	if err != nil {
		return err
	}
	// A remote backend is dialed once and shared across engines; local
	// stays nil so ShardedReplay sizes a private pool per replay.
	var backend pif.Backend
	if backendSpec != "" && backendSpec != "local" {
		backend, err = pif.DialBackend(backendSpec, parallel)
		if err != nil {
			return err
		}
		defer backend.Close()
	}
	wl, err := pif.WorkloadByName(ix.Workload)
	if err != nil {
		return fmt.Errorf("trace store %s: %w", dir, err)
	}
	if !ix.PhaseCompatible(cfg.WarmupInstrs, cfg.MeasureInstrs) {
		return fmt.Errorf(
			"trace store %s was recorded with phase split %v; replaying -warmup %d -measure %d would silently diverge from a live run",
			dir, ix.Phases, cfg.WarmupInstrs, cfg.MeasureInstrs)
	}
	mode := "approx"
	if exact {
		mode = "exact"
	}
	for i, eng := range engines {
		start := time.Now()
		opt := pif.ShardedReplayOptions{
			Dir:      dir,
			Workload: wl,
			Config:   cfg,
			Shards:   shards,
			Exact:    exact,
			Backend:  backend,
		}
		if eng.registry != "" {
			opt.PrefetcherName = eng.registry
		} else {
			opt.NewPrefetcher = eng.factory
		}
		res, err := pif.ShardedReplay(ctx, opt)
		if err != nil {
			return fmt.Errorf("%s: %w", eng.name, err)
		}
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("sharded replay: %d windows (%s warmup), %s wall-clock\n",
			shards, mode, time.Since(start).Round(time.Millisecond))
		printDetail(pif.JobResult{Sim: res.Merged, Elapsed: time.Since(start)}, perfect, verbose)
		if verbose {
			for k, p := range res.Plans {
				fmt.Printf("  shard %d: window %s warmup %d measure %d uipc %.4f\n",
					k, p.Window, p.WarmupInstrs, p.MeasureInstrs, res.Shards[k].UIPC)
			}
		}
	}
	return nil
}

// traceJobs builds one replay job per engine over the sharded store at
// dir (full-store replay, or one record window when window is non-nil).
// The store names the workload (its profile supplies the front-end
// seed); jobs carry a Source factory, so every job opens a private
// reader and jobs fan out concurrently over the same trace.
func traceJobs(dir string, window *pif.TraceWindow, cfg pif.SimConfig, engines []engine) ([]pif.Job, error) {
	ix, err := pif.ReadTraceIndex(dir)
	if err != nil {
		return nil, err
	}
	wl, err := pif.WorkloadByName(ix.Workload)
	if err != nil {
		return nil, fmt.Errorf("trace store %s: %w", dir, err)
	}
	need := cfg.WarmupInstrs + cfg.MeasureInstrs
	var source pif.Source
	label := "(trace)"
	if window != nil {
		// A slice is its own experiment — the window, not the recorded
		// phase split, defines what is replayed — so only the window's
		// record budget is validated here.
		if err := ix.CheckWindow(*window); err != nil {
			return nil, err
		}
		if window.Len < need {
			return nil, fmt.Errorf("window %s holds %d records, need %d (warmup+measure)",
				window, window.Len, need)
		}
		source = pif.SliceSource(dir, *window)
		label = fmt.Sprintf("(slice@%s)", window)
	} else {
		if ix.Records() < need {
			return nil, fmt.Errorf("trace store %s holds %d records, need %d (warmup+measure)",
				dir, ix.Records(), need)
		}
		if !ix.PhaseCompatible(cfg.WarmupInstrs, cfg.MeasureInstrs) {
			return nil, fmt.Errorf(
				"trace store %s was recorded with phase split %v; replaying -warmup %d -measure %d would silently diverge from a live run (re-record with tracegen -warmup %d, or match the recorded split)",
				dir, ix.Phases, cfg.WarmupInstrs, cfg.MeasureInstrs, cfg.WarmupInstrs)
		}
		source = pif.StoreSource(dir)
	}
	var jobs []pif.Job
	for _, eng := range engines {
		jobs = append(jobs, eng.job(wl.Name+label+"/"+eng.name, wl, cfg, source))
	}
	return jobs, nil
}

// resolveWorkloads expands the -workload flag.
func resolveWorkloads(names string) ([]pif.Workload, error) {
	if names == "all" {
		return pif.Workloads(), nil
	}
	var out []pif.Workload
	for _, name := range strings.Split(names, ",") {
		wl, err := pif.WorkloadByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, wl)
	}
	return out, nil
}

// resolveEngines expands the -prefetcher flag. The flag-tuned engines
// (pif geometry knobs, next-line degree) build custom factories; anything
// else resolves through the engine registry.
func resolveEngines(names string, history, sabs, window, degree int) ([]engine, error) {
	if names == "all" {
		names = strings.Join(pif.PrefetcherNames(), ",")
	}
	var out []engine
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		switch name {
		case "pif":
			cfg := pif.DefaultPIFConfig()
			registry := "pif" // untuned = exactly the registry engine
			if history > 0 {
				cfg.HistoryRegions = history
				registry = ""
			}
			if sabs > 0 {
				cfg.NumSABs = sabs
				registry = ""
			}
			if window > 0 {
				cfg.SABWindow = window
				registry = ""
			}
			out = append(out, engine{name, registry, func() pif.Prefetcher { return pif.NewPIF(cfg) }})
		case "nextline":
			registry := ""
			if degree == 4 { // the registry's nextline degree
				registry = "nextline"
			}
			out = append(out, engine{name, registry, func() pif.Prefetcher { return pif.NewNextLine(degree) }})
		default:
			// Validate the name up front so a typo fails before any job runs.
			if _, err := pif.PrefetcherByName(name); err != nil {
				return nil, err
			}
			n := name
			out = append(out, engine{n, n, func() pif.Prefetcher {
				p, err := pif.PrefetcherByName(n)
				if err != nil {
					panic(err) // validated above
				}
				return p
			}})
		}
	}
	return out, nil
}

// printDetail prints the single-job report (the historical pifsim output).
func printDetail(r pif.JobResult, perfect, verbose bool) {
	res := r.Sim
	fmt.Printf("workload    %s\n", res.Workload)
	fmt.Printf("prefetcher  %s (perfect L1: %v)\n", res.Prefetcher, perfect)
	fmt.Printf("instructions %d  cycles %d  UIPC %.4f\n", res.Instructions, res.Cycles, res.UIPC)
	fmt.Printf("fetch: %d correct-path accesses, %d misses (ratio %.4f)\n",
		res.CorrectAccesses, res.CorrectMisses, res.MissRatio())
	fmt.Printf("prefetch: %d issued, %d useful (coverage %.1f%%)\n",
		res.PrefetchesIssued, res.CoveredMisses, res.Coverage()*100)
	fmt.Printf("stall cycles %d\n", res.StallCycles)
	fmt.Printf("wall-clock  %s\n", r.Elapsed.Round(time.Millisecond))
	if verbose {
		fmt.Printf("\nL1: %+v\nfront-end: %+v\n", res.L1, res.FE)
	}
}
