// Command pifsim runs a single workload/prefetcher simulation and prints
// the measured coverage, miss ratio, and UIPC — the unit of work every
// figure of the evaluation is built from.
//
// Usage:
//
//	pifsim [-workload "OLTP DB2"] [-prefetcher pif|tifs|nextline|none]
//	       [-perfect] [-warmup N] [-measure N] [-history N] [-sabs N]
//	       [-window N] [-degree N] [-v]
package main

import (
	"flag"
	"fmt"
	"os"

	pif "repro"
)

func main() {
	wlName := flag.String("workload", "OLTP DB2", "workload name (see -list)")
	list := flag.Bool("list", false, "list workloads and exit")
	pfName := flag.String("prefetcher", "pif", "prefetcher: pif, tifs, nextline, none")
	perfect := flag.Bool("perfect", false, "simulate the perfect-latency L1 bound")
	warmup := flag.Uint64("warmup", 8_000_000, "warmup instructions")
	measure := flag.Uint64("measure", 2_000_000, "measured instructions")
	history := flag.Int("history", 0, "PIF history buffer regions (0 = paper default 32K)")
	sabs := flag.Int("sabs", 0, "PIF stream address buffers (0 = paper default 4)")
	window := flag.Int("window", 0, "PIF SAB window regions (0 = paper default 7)")
	degree := flag.Int("degree", 4, "next-line prefetch degree")
	verbose := flag.Bool("v", false, "print full result struct")
	flag.Parse()

	if *list {
		for _, w := range pif.Workloads() {
			fmt.Println(w.Name)
		}
		return
	}

	wl, err := pif.WorkloadByName(*wlName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pifsim:", err)
		os.Exit(1)
	}

	var pf pif.Prefetcher
	switch *pfName {
	case "pif":
		cfg := pif.DefaultPIFConfig()
		if *history > 0 {
			cfg.HistoryRegions = *history
		}
		if *sabs > 0 {
			cfg.NumSABs = *sabs
		}
		if *window > 0 {
			cfg.SABWindow = *window
		}
		pf = pif.NewPIF(cfg)
	case "tifs":
		pf = pif.NewTIFS()
	case "nextline":
		pf = pif.NewNextLine(*degree)
	case "none":
		pf = pif.NoPrefetch()
	default:
		fmt.Fprintf(os.Stderr, "pifsim: unknown prefetcher %q\n", *pfName)
		os.Exit(1)
	}

	cfg := pif.DefaultSimConfig()
	cfg.WarmupInstrs = *warmup
	cfg.MeasureInstrs = *measure
	cfg.PerfectL1 = *perfect

	res, err := pif.Simulate(cfg, wl, pf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pifsim:", err)
		os.Exit(1)
	}

	fmt.Printf("workload    %s\n", res.Workload)
	fmt.Printf("prefetcher  %s (perfect L1: %v)\n", res.Prefetcher, *perfect)
	fmt.Printf("instructions %d  cycles %d  UIPC %.4f\n", res.Instructions, res.Cycles, res.UIPC)
	fmt.Printf("fetch: %d correct-path accesses, %d misses (ratio %.4f)\n",
		res.CorrectAccesses, res.CorrectMisses, res.MissRatio())
	fmt.Printf("prefetch: %d issued, %d useful (coverage %.1f%%)\n",
		res.PrefetchesIssued, res.CoveredMisses, res.Coverage()*100)
	fmt.Printf("stall cycles %d\n", res.StallCycles)
	if *verbose {
		fmt.Printf("\nL1: %+v\nfront-end: %+v\n", res.L1, res.FE)
	}
}
