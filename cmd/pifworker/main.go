// Command pifworker runs simulation jobs leased from a pifcoord
// coordinator. It registers, pulls up to -parallel tasks at a time,
// heartbeats while they run, and posts each result keyed by its task ID
// so retried posts deduplicate.
//
// Usage:
//
//	pifworker -coord localhost:8077
//	pifworker -coord localhost:8077 -name lab-3 -parallel 4
//
// Jobs arrive as registry references — workload name, prefetcher name,
// simulator config, and optionally a trace-store path with a record
// window — and are resolved locally: live workloads are regenerated from
// the registry (deterministic, so every worker produces byte-identical
// traces), store paths must be readable at the same path on the worker
// (shared filesystem, or stores shipped ahead of time with tracegen).
//
// A worker killed mid-job simply stops heartbeating; the coordinator
// re-queues its tasks after the lease TTL. Ctrl-C abandons in-flight
// tasks the same way.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/remote"
	"repro/internal/runner"
)

func main() {
	coord := flag.String("coord", "localhost:8077", "coordinator address (host:port or http://host:port)")
	name := flag.String("name", "", "worker name in coordinator diagnostics (default: hostname)")
	parallel := flag.Int("parallel", 0, "tasks run concurrently (0 = GOMAXPROCS)")
	authToken := flag.String("auth-token", "", "bearer token for a token-protected coordinator (empty for an open one)")
	flag.Parse()

	if *name == "" {
		if h, err := os.Hostname(); err == nil {
			*name = h
		} else {
			*name = "pifworker"
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	w := &remote.Worker{Coord: *coord, Name: *name, Parallel: *parallel, Token: *authToken}
	fmt.Fprintf(os.Stderr, "pifworker: %s pulling from %s with %d slot(s)\n",
		*name, *coord, runner.Workers(*parallel))
	if err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "pifworker:", err)
		os.Exit(1)
	}
}
