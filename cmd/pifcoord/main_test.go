package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/remote"
	"repro/internal/report"
	"repro/internal/sim"
)

// TestResultStoreSkipsFailedResults locks the salvage-store invariant:
// jobs/ holds only completed simulations. A failed task — a worker
// error, or the coordinator's max-attempts give-up whose Sim is
// zero-valued — must never be written where LoadJobResults would read
// it as a success; it lands in failed.jsonl instead.
func TestResultStoreSkipsFailedResults(t *testing.T) {
	dir := t.TempDir()
	s := newResultStore(dir)
	s.enqueue("run-a", remote.WireResult{V: remote.WireVersion, Label: "good", Sim: sim.Result{Instructions: 42}})
	s.enqueue("run-a", remote.WireResult{V: remote.WireVersion, Label: "bad", Err: "remote: task 2 (bad) lost its worker 3 times; giving up"})
	s.close()

	jobs, err := report.LoadJobResults(filepath.Join(dir, "run-a"))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].Label != "good" {
		t.Fatalf("jobs/ holds %d results, want exactly the successful one: %+v", len(jobs), jobs)
	}
	b, err := os.ReadFile(filepath.Join(dir, "run-a", "failed.jsonl"))
	if err != nil {
		t.Fatalf("failure record: %v", err)
	}
	if !strings.Contains(string(b), "lost its worker") {
		t.Fatalf("failed.jsonl = %q, want the task's error text", b)
	}
}

// TestResultStoreEnqueueAfterClose guards the shutdown ordering: a
// handler completing inside the shutdown grace may call enqueue after
// the store closed; that must drop the result, not panic on a closed
// channel.
func TestResultStoreEnqueueAfterClose(t *testing.T) {
	s := newResultStore(t.TempDir())
	s.close()
	s.enqueue("run-a", remote.WireResult{V: remote.WireVersion, Label: "late"})
	s.close() // idempotent
}
