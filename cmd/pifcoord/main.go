// Command pifcoord runs the remote-execution coordinator: an HTTP server
// that accepts job batches from clients (pifsim or experiments with
// -backend remote@ADDR), leases them to pifworker processes, re-queues
// work whose worker misses its heartbeat deadline, and streams completed
// results back to the submitting client.
//
// Usage:
//
//	pifcoord -listen :8077
//	pifcoord -listen :8077 -results results-remote -lease-ttl 15s -max-attempts 3
//	pifcoord -listen :8077 -auth-token SECRET
//
// With -results DIR every accepted result is additionally persisted as it
// lands, to DIR/<run-id>/jobs/<key>.json in the same schema-versioned,
// atomically-written format as the experiments CLI's per-job store: a
// coordinator killed mid-sweep leaves only complete job files behind. Keys
// are sequence-prefixed sanitized job labels, so files sort in completion
// order and never collide. Run IDs embed the coordinator's incarnation, so
// a restarted coordinator reusing DIR never overwrites a previous run's
// salvage data. Failed tasks — including the max-attempts give-up result —
// never land in jobs/ (a failure carries no simulation data and must not
// be salvageable as one); they are appended to DIR/<run-id>/failed.jsonl.
//
// The lease TTL is the failure detector: a worker that has not heartbeat
// for a full TTL forfeits its leases and the tasks are re-queued, up to
// -max-attempts leases per task before the task completes with a hard
// error result (never a silent zero-valued one).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"repro/internal/httpapi"
	"repro/internal/remote"
	"repro/internal/report"
)

func main() {
	listen := flag.String("listen", ":8077", "address to serve the coordinator API on")
	resultsDir := flag.String("results", "", "stream accepted results into DIR/<run-id>/jobs/<key>.json (empty = no persistence)")
	leaseTTL := flag.Duration("lease-ttl", remote.DefaultLeaseTTL, "heartbeat deadline; a worker silent this long forfeits its leases")
	maxAttempts := flag.Int("max-attempts", remote.DefaultMaxAttempts, "leases per task before it completes with a hard error")
	authToken := flag.String("auth-token", "", "bearer token required on every API request — clients and workers must present it (empty = open API)")
	flag.Parse()

	opts := remote.CoreOptions{LeaseTTL: *leaseTTL, MaxAttempts: *maxAttempts}
	var store *resultStore
	if *resultsDir != "" {
		store = newResultStore(*resultsDir)
		// OnResult runs under the coordinator lock: hand the write to the
		// store's goroutine instead of touching the disk there.
		opts.OnResult = store.enqueue
	}
	core := remote.NewCore(opts)

	handler := httpapi.RequireAuth(*authToken, remote.WireVersion, remote.NewServer(core), "/v1/healthz")
	srv := &http.Server{Addr: *listen, Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		core.Close()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()

	fmt.Fprintf(os.Stderr, "pifcoord: listening on %s (lease ttl %s, max attempts %d)\n",
		*listen, *leaseTTL, *maxAttempts)
	err := srv.ListenAndServe()
	if errors.Is(err, http.ErrServerClosed) {
		// ListenAndServe returns as soon as Shutdown closes the listener;
		// in-flight handlers (which may still enqueue results) run until
		// Shutdown returns. Only then is it safe to close the store.
		<-shutdownDone
	}
	if store != nil {
		store.close()
	}
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "pifcoord:", err)
		os.Exit(1)
	}
}

// resultStore persists accepted results off the coordinator's lock: the
// core's OnResult callback enqueues, a single goroutine writes.
type resultStore struct {
	dir string
	ch  chan storedResult
	wg  sync.WaitGroup

	mu     sync.Mutex
	closed bool
	seq    map[string]int // per-run completion sequence, prefixes keys
}

type storedResult struct {
	runID string
	res   remote.WireResult
}

func newResultStore(dir string) *resultStore {
	s := &resultStore{dir: dir, ch: make(chan storedResult, 256), seq: make(map[string]int)}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for sr := range s.ch {
			if err := s.write(sr); err != nil {
				fmt.Fprintln(os.Stderr, "pifcoord: persist result:", err)
			}
		}
	}()
	return s
}

func (s *resultStore) enqueue(runID string, res remote.WireResult) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		// A handler outliving the shutdown grace: drop rather than send
		// on the closed channel (the client still got the result).
		return
	}
	select {
	case s.ch <- storedResult{runID: runID, res: res}:
	default:
		// Never block the coordinator lock on a full queue; drop with a
		// note (the client still receives the result over the API).
		fmt.Fprintf(os.Stderr, "pifcoord: persist queue full, dropping %s result %q\n", runID, res.Label)
	}
}

func (s *resultStore) close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.ch)
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *resultStore) write(sr storedResult) error {
	if sr.res.Err != "" {
		// A failed task — worker error or the coordinator's max-attempts
		// give-up — carries no simulation data. It must never appear in
		// jobs/, where LoadJobResults would read its zero-valued Sim as a
		// completed simulation; record it beside the salvage data instead.
		return s.writeFailure(sr)
	}
	s.mu.Lock()
	s.seq[sr.runID]++
	n := s.seq[sr.runID]
	s.mu.Unlock()
	key := fmt.Sprintf("r%04d-%s", n, jobKeyStem(sr.res.Label))
	j, err := report.NewJobResult(key, sr.res.Label, nil, sr.res.Sim)
	if err != nil {
		return err
	}
	dir := report.JobsDir(filepath.Join(s.dir, sr.runID))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return report.WriteJobResult(filepath.Join(dir, key+".json"), j)
}

// writeFailure appends a failed task's wire result as one JSON line to
// the run's failed.jsonl — outside jobs/, so per-job loaders can never
// mistake it for a completed simulation.
func (s *resultStore) writeFailure(sr storedResult) error {
	runDir := filepath.Join(s.dir, sr.runID)
	if err := os.MkdirAll(runDir, 0o755); err != nil {
		return err
	}
	line, err := json.Marshal(sr.res)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(filepath.Join(runDir, "failed.jsonl"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write(append(line, '\n'))
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// jobKeyStem sanitizes a job label into the key charset accepted by
// report.ValidJobKey (alphanumerics plus '.', '_', '-'), truncated so the
// sequence prefix keeps the whole key under the 160-byte limit.
func jobKeyStem(label string) string {
	const maxStem = 120
	b := make([]byte, 0, len(label))
	for i := 0; i < len(label) && len(b) < maxStem; i++ {
		c := label[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			b = append(b, c)
		case c == '.' || c == '_' || c == '-':
			b = append(b, c)
		default:
			b = append(b, '_')
		}
	}
	if len(b) == 0 {
		return "job"
	}
	return string(b)
}
