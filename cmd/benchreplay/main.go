// Command benchreplay regenerates and validates BENCH_replay.json, the
// committed replay-performance artifact: store decode throughput
// (per-record vs batch), end-to-end simulation replay, sharded replay,
// and sweep-grid expansion, all with allocation profiles.
//
// Usage:
//
//	benchreplay -out BENCH_replay.json        # regenerate the artifact
//	benchreplay -check BENCH_replay.json      # CI: structural freshness +
//	                                          # re-measured invariants
//
// -check reruns the suite, verifies the committed artifact structurally
// matches the regeneration (schema, fixture configuration, benchmark
// set — raw timings are machine-dependent and not compared), and
// enforces the performance floors (batch decode >= 2x per-record,
// ~0 allocs/record) on the fresh measurements.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"

	_ "repro/internal/core" // register the PIF engine variants
)

func main() {
	os.Exit(run())
}

func run() int {
	out := flag.String("out", "", "write the regenerated artifact to this path")
	check := flag.String("check", "", "validate the committed artifact at this path against a fresh run")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()
	if (*out == "") == (*check == "") {
		fmt.Fprintln(os.Stderr, "benchreplay: exactly one of -out or -check is required")
		return 2
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "benchreplay: "+format+"\n", args...)
	}
	if *quiet {
		logf = nil
	}
	fresh, err := bench.Run(bench.DefaultConfig(), logf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreplay:", err)
		return 1
	}
	if err := bench.CheckInvariants(fresh); err != nil {
		fmt.Fprintln(os.Stderr, "benchreplay:", err)
		return 1
	}

	if *check != "" {
		data, err := os.ReadFile(*check)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchreplay:", err)
			return 1
		}
		var committed bench.Artifact
		if err := json.Unmarshal(data, &committed); err != nil {
			fmt.Fprintf(os.Stderr, "benchreplay: %s: %v\n", *check, err)
			return 1
		}
		if err := bench.CheckFresh(committed, fresh); err != nil {
			fmt.Fprintln(os.Stderr, "benchreplay:", err)
			return 1
		}
		fmt.Printf("benchreplay: %s is fresh; measured batch speedup %.2fx, sharded %.2fx\n",
			*check, fresh.Derived.BatchSpeedup, fresh.Derived.ShardedSpeedup)
		return 0
	}

	data, err := json.MarshalIndent(fresh, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreplay:", err)
		return 1
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchreplay:", err)
		return 1
	}
	fmt.Printf("benchreplay: wrote %s (batch speedup %.2fx, sharded %.2fx)\n",
		*out, fresh.Derived.BatchSpeedup, fresh.Derived.ShardedSpeedup)
	return 0
}
