// Command benchreplay regenerates and validates the committed
// performance artifacts:
//
//   - BENCH_replay.json (the default suite): store decode throughput
//     (per-record vs batch vs zero-copy mmap), end-to-end simulation
//     replay, sharded replay, sweep-cell execution (serial vs sharded),
//     and sweep-grid expansion, all with allocation profiles. The
//     config block records whether the mmap or read-file chunk path
//     served the run.
//   - BENCH_runner.json (-suite runner): job-execution throughput —
//     grid jobs/sec through runner.RunOn serially and in parallel, and
//     the per-job engine-spec resolution overhead.
//
// Usage:
//
//	benchreplay -out BENCH_replay.json                # regenerate
//	benchreplay -check BENCH_replay.json              # CI freshness
//	benchreplay -suite runner -out BENCH_runner.json
//	benchreplay -suite runner -check BENCH_runner.json
//
// -check reruns the selected suite, verifies the committed artifact
// structurally matches the regeneration (schema, fixture configuration,
// benchmark set — raw timings are machine-dependent and not compared),
// and enforces the suite's performance invariants on the fresh
// measurements (replay: batch decode >= 2x per-record, ~0 allocs/record,
// mmap decode no slower than read-file batch where mmap is active, and a
// >= 1.5x sharded sweep-cell speedup on 4+ CPUs; runner: spec resolution
// a few percent of job runtime at most).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"

	_ "repro/internal/core" // register the PIF engine variants
)

func main() {
	os.Exit(run())
}

func run() int {
	out := flag.String("out", "", "write the regenerated artifact to this path")
	check := flag.String("check", "", "validate the committed artifact at this path against a fresh run")
	suite := flag.String("suite", "replay", "benchmark suite: replay or runner")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()
	if (*out == "") == (*check == "") {
		fmt.Fprintln(os.Stderr, "benchreplay: exactly one of -out or -check is required")
		return 2
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "benchreplay: "+format+"\n", args...)
	}
	if *quiet {
		logf = nil
	}

	switch *suite {
	case "replay":
		return runReplay(*out, *check, logf)
	case "runner":
		return runRunner(*out, *check, logf)
	default:
		fmt.Fprintf(os.Stderr, "benchreplay: unknown suite %q (have replay, runner)\n", *suite)
		return 2
	}
}

func runReplay(out, check string, logf func(string, ...any)) int {
	fresh, err := bench.Run(bench.DefaultConfig(), logf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreplay:", err)
		return 1
	}
	if err := bench.CheckInvariants(fresh); err != nil {
		fmt.Fprintln(os.Stderr, "benchreplay:", err)
		return 1
	}

	if check != "" {
		var committed bench.Artifact
		if !readArtifact(check, &committed) {
			return 1
		}
		if err := bench.CheckFresh(committed, fresh); err != nil {
			fmt.Fprintln(os.Stderr, "benchreplay:", err)
			return 1
		}
		fmt.Printf("benchreplay: %s is fresh; measured batch speedup %.2fx, mmap %.2fx (%s), sharded %.2fx, sweep cell %.2fx\n",
			check, fresh.Derived.BatchSpeedup, fresh.Derived.MmapSpeedup, fresh.Config.ChunkSource,
			fresh.Derived.ShardedSpeedup, fresh.Derived.SweepCellSpeedup)
		return 0
	}
	if !writeArtifact(out, fresh) {
		return 1
	}
	fmt.Printf("benchreplay: wrote %s (batch speedup %.2fx, mmap %.2fx (%s), sharded %.2fx, sweep cell %.2fx)\n",
		out, fresh.Derived.BatchSpeedup, fresh.Derived.MmapSpeedup, fresh.Config.ChunkSource,
		fresh.Derived.ShardedSpeedup, fresh.Derived.SweepCellSpeedup)
	return 0
}

func runRunner(out, check string, logf func(string, ...any)) int {
	fresh, err := bench.RunRunner(bench.DefaultRunnerConfig(), logf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreplay:", err)
		return 1
	}
	if err := bench.CheckRunnerInvariants(fresh); err != nil {
		fmt.Fprintln(os.Stderr, "benchreplay:", err)
		return 1
	}

	if check != "" {
		var committed bench.RunnerArtifact
		if !readArtifact(check, &committed) {
			return 1
		}
		if err := bench.CheckRunnerFresh(committed, fresh); err != nil {
			fmt.Fprintln(os.Stderr, "benchreplay:", err)
			return 1
		}
		fmt.Printf("benchreplay: %s is fresh; measured parallel speedup %.2fx, resolve overhead %.5f\n",
			check, fresh.Derived.ParallelSpeedup, fresh.Derived.ResolveOverhead)
		return 0
	}
	if !writeArtifact(out, fresh) {
		return 1
	}
	fmt.Printf("benchreplay: wrote %s (parallel speedup %.2fx, resolve overhead %.5f)\n",
		out, fresh.Derived.ParallelSpeedup, fresh.Derived.ResolveOverhead)
	return 0
}

func readArtifact(path string, into any) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreplay:", err)
		return false
	}
	if err := json.Unmarshal(data, into); err != nil {
		fmt.Fprintf(os.Stderr, "benchreplay: %s: %v\n", path, err)
		return false
	}
	return true
}

func writeArtifact(path string, a any) bool {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreplay:", err)
		return false
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchreplay:", err)
		return false
	}
	return true
}
