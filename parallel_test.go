package pif

import (
	"context"
	"strings"
	"testing"
)

// determinismOptions is a reduced-but-complete scale: every artifact runs
// with two workloads so the test stays fast under -race while still
// exercising cross-workload job interleaving.
func determinismOptions(parallel int) ExperimentOptions {
	opts := QuickExperimentOptions()
	opts.Workloads = Workloads()[:2]
	// One workload for the sweep artifacts keeps the -race runtime sane
	// while still interleaving their grids with the figure jobs.
	opts.SweepWorkloads = Workloads()[:1]
	opts.WarmupInstrs = 400_000
	opts.MeasureInstrs = 200_000
	opts.Parallel = parallel
	return opts
}

func renderAll(t *testing.T, parallel int) string {
	t.Helper()
	reports, err := RunAllExperiments(determinismOptions(parallel))
	if err != nil {
		t.Fatalf("RunAll (parallel=%d): %v", parallel, err)
	}
	if len(reports) != len(ExperimentIDs()) {
		t.Fatalf("RunAll (parallel=%d) = %d reports, want %d", parallel, len(reports), len(ExperimentIDs()))
	}
	var b strings.Builder
	for _, rep := range reports {
		b.WriteString("== " + rep.ID + ": " + rep.Title + " ==\n")
		b.WriteString(rep.Text)
		b.WriteString("\n")
	}
	return b.String()
}

// TestParallelSerialDeterminism is the engine's acceptance criterion: a
// parallel (8-worker) regeneration of every artifact renders byte-identical
// to a serial (1-worker) regeneration. Run under -race this also proves
// the job fan-out and the Env caches are data-race free.
func TestParallelSerialDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism test skipped in -short mode")
	}
	serial := renderAll(t, 1)
	parallel := renderAll(t, 8)
	if serial != parallel {
		d := firstDiff(serial, parallel)
		t.Fatalf("parallel rendering differs from serial at byte %d:\nserial:   %.120q\nparallel: %.120q",
			d, tail(serial, d), tail(parallel, d))
	}
}

// TestJobsAPIParallelDeterminism covers the public job API the same way:
// identical job lists through pools of width 1 and 8 yield identical
// results slices.
func TestJobsAPIParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism test skipped in -short mode")
	}
	cfg := DefaultSimConfig()
	cfg.WarmupInstrs = 200_000
	cfg.MeasureInstrs = 200_000
	mk := func() []Job {
		var jobs []Job
		for _, wl := range Workloads()[:3] {
			for _, name := range []string{"none", "nextline", "tifs", "pif"} {
				jobs = append(jobs, Job{
					Label:    wl.Name + "/" + name,
					Workload: wl,
					Config:   cfg,
					Engine:   EngineSpec{Name: name},
				})
			}
		}
		return jobs
	}
	serial, err := RunJobs(context.Background(), mk(), 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunJobs(context.Background(), mk(), 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i].Sim != parallel[i].Sim {
			t.Errorf("job %d (%s): parallel result differs from serial", i, serial[i].Label)
		}
	}
}

// TestStructuredReportDeterminism extends TestParallelSerialDeterminism to
// the structured path: two full RunAll passes — serial and 8-wide — must
// serialize every artifact to byte-identical canonical JSON, not just
// render identical text. (Byte-stability of full QuickOptions passes
// across processes is additionally pinned by the golden suite in
// internal/experiments, which compares a fresh pass against committed
// fixtures.)
func TestStructuredReportDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism test skipped in -short mode")
	}
	encodeAll := func(parallel int) string {
		reports, err := RunAllExperiments(determinismOptions(parallel))
		if err != nil {
			t.Fatalf("RunAll (parallel=%d): %v", parallel, err)
		}
		arts, err := ExperimentArtifacts(reports)
		if err != nil {
			t.Fatalf("ExperimentArtifacts (parallel=%d): %v", parallel, err)
		}
		var b strings.Builder
		for _, a := range arts {
			enc, err := a.Encode()
			if err != nil {
				t.Fatalf("encode %s: %v", a.ID, err)
			}
			if a.Data == nil {
				t.Fatalf("%s: artifact has no structured data", a.ID)
			}
			b.Write(enc)
		}
		return b.String()
	}
	serial := encodeAll(1)
	parallel := encodeAll(8)
	if serial != parallel {
		d := firstDiff(serial, parallel)
		t.Fatalf("structured JSON differs between serial and parallel runs at byte %d:\nserial:   %.120q\nparallel: %.120q",
			d, tail(serial, d), tail(parallel, d))
	}
}

func firstDiff(a, b string) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

func tail(s string, from int) string {
	if from >= len(s) {
		return ""
	}
	return s[from:]
}
