// OLTP: dissect where PIF's benefit comes from on a transaction-processing
// workload by toggling the design's pieces — trap-level separation and the
// temporal compactor — the ablations DESIGN.md §5 calls out.
package main

import (
	"fmt"
	"log"

	pif "repro"
)

func run(cfg pif.SimConfig, wl pif.Workload, label string, pcfg pif.PIFConfig) pif.SimResult {
	res, err := pif.Simulate(cfg, wl, pif.NewPIF(pcfg))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-28s coverage %5.1f%%  UIPC %.3f\n", label, res.Coverage()*100, res.UIPC)
	return res
}

func main() {
	cfg := pif.DefaultSimConfig()
	cfg.WarmupInstrs = 6_000_000
	cfg.MeasureInstrs = 1_500_000

	for _, wl := range []pif.Workload{pif.OLTPDB2(), pif.OLTPOracle()} {
		base, err := pif.Simulate(cfg, wl, pif.NoPrefetch())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (baseline UIPC %.3f, miss ratio %.2f%%)\n",
			wl.Name, base.UIPC, base.MissRatio()*100)

		full := pif.DefaultPIFConfig()
		run(cfg, wl, "PIF (paper config)", full)

		merged := full
		merged.SeparateTrapLevels = false
		run(cfg, wl, "PIF w/o trap-level split", merged)

		noTemporal := full
		noTemporal.TemporalDepth = 0
		noTemporal.TemporalDepthTL1 = 0
		run(cfg, wl, "PIF w/o temporal compactor", noTemporal)

		smallHistory := full
		smallHistory.HistoryRegions = 2 << 10
		run(cfg, wl, "PIF with 2K-region history", smallHistory)
		fmt.Println()
	}
}
