// Quickstart: simulate one server workload with and without Proactive
// Instruction Fetch and print the headline numbers — the minimal use of
// the public API.
package main

import (
	"fmt"
	"log"

	pif "repro"
)

func main() {
	cfg := pif.DefaultSimConfig()
	cfg.WarmupInstrs = 4_000_000
	cfg.MeasureInstrs = 1_000_000
	wl := pif.OLTPDB2()

	base, err := pif.Simulate(cfg, wl, pif.NoPrefetch())
	if err != nil {
		log.Fatal(err)
	}
	withPIF, err := pif.Simulate(cfg, wl, pif.NewPIF(pif.DefaultPIFConfig()))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s\n", wl.Name)
	fmt.Printf("baseline:  UIPC %.3f, L1-I miss ratio %.2f%%\n",
		base.UIPC, base.MissRatio()*100)
	fmt.Printf("with PIF:  UIPC %.3f, miss coverage %.1f%%\n",
		withPIF.UIPC, withPIF.Coverage()*100)
	fmt.Printf("speedup:   %.2fx\n", withPIF.UIPC/base.UIPC)
}
