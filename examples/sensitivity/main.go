// Sensitivity: sweep the stream-address-buffer count and window depth (the
// paper settles on 4 SABs × 7 regions, footnote 2 of Section 4.3) on one
// workload and print the coverage surface.
package main

import (
	"fmt"
	"log"

	pif "repro"
)

func main() {
	cfg := pif.DefaultSimConfig()
	cfg.WarmupInstrs = 5_000_000
	cfg.MeasureInstrs = 1_000_000
	wl := pif.WebZeus()

	sabCounts := []int{1, 2, 4, 8}
	windows := []int{2, 4, 7, 10, 16}

	fmt.Printf("PIF coverage on %s: SAB count (rows) x window regions (cols)\n      ", wl.Name)
	for _, w := range windows {
		fmt.Printf("%8d", w)
	}
	fmt.Println()
	for _, n := range sabCounts {
		fmt.Printf("%4d  ", n)
		for _, w := range windows {
			pcfg := pif.DefaultPIFConfig()
			pcfg.NumSABs = n
			pcfg.SABWindow = w
			res, err := pif.Simulate(cfg, wl, pif.NewPIF(pcfg))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%7.1f%%", res.Coverage()*100)
		}
		fmt.Println()
	}
	fmt.Println("\n(paper configuration: 4 SABs, 7-region window)")
}
