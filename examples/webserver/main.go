// Webserver: the paper's motivating scenario — web serving workloads whose
// multi-megabyte instruction footprints thrash the L1-I. This example runs
// both web workloads (Apache and Zeus stand-ins) across the full
// prefetcher lineup and prints a Figure-10-style comparison.
package main

import (
	"fmt"
	"log"

	pif "repro"
)

func main() {
	cfg := pif.DefaultSimConfig()
	cfg.WarmupInstrs = 6_000_000
	cfg.MeasureInstrs = 1_500_000

	fmt.Println("web serving under instruction-fetch pressure")
	fmt.Printf("%-12s %-10s %10s %10s %10s\n", "workload", "prefetcher", "missratio", "coverage", "speedup")

	for _, wl := range []pif.Workload{pif.WebApache(), pif.WebZeus()} {
		base, err := pif.Simulate(cfg, wl, pif.NoPrefetch())
		if err != nil {
			log.Fatal(err)
		}
		engines := []pif.Prefetcher{
			pif.NoPrefetch(),
			pif.NewNextLine(4),
			pif.NewTIFS(),
			pif.NewPIF(pif.DefaultPIFConfig()),
		}
		for _, engine := range engines {
			res, err := pif.Simulate(cfg, wl, engine)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-12s %-10s %9.2f%% %9.1f%% %9.2fx\n",
				wl.Name, res.Prefetcher, res.MissRatio()*100,
				res.Coverage()*100, res.UIPC/base.UIPC)
		}
		perfect := cfg
		perfect.PerfectL1 = true
		res, err := pif.Simulate(perfect, wl, pif.NoPrefetch())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %-10s %10s %10s %9.2fx\n",
			wl.Name, "Perfect", "-", "-", res.UIPC/base.UIPC)
	}
}
