// Package pif is the public API of this reproduction of "Proactive
// Instruction Fetch" (Ferdman, Kaynak, Falsafi — MICRO 2011): an L1
// instruction prefetcher that records the correct-path, retire-order
// instruction stream in compact spatial-region form and replays recorded
// streams to eliminate instruction-fetch stalls.
//
// The evaluation pipeline is built from three orthogonal, composable
// axes — Source → Engine → Backend — feeding the report layer:
//
//   - a Source names what to simulate: live workload execution
//     (LiveSource), a recorded sharded trace store (StoreSource), or one
//     record window of it (SliceSource, TraceWindow), so sweeps fan out
//     over trace slices without re-executing workloads;
//   - a prefetch engine names what is being evaluated: a declarative,
//     serializable EngineSpec ("pif", or "pif" tuned via params — see
//     ParseEngineSpec and EngineSchemas for each engine's parameter
//     schema) resolved through the engine registry, with direct
//     constructors (NewPIF, NewTIFS, NewNextLine, NoPrefetch) for
//     programmatic use;
//   - a Backend names where jobs run: the in-process LocalBackend today,
//     any Submit/Results/Close implementation tomorrow (RunJobsOn, Pool,
//     ExperimentOptions.Backend).
//
// The package re-exports the pieces a downstream user needs:
//
//   - the simulator producing the paper's coverage and UIPC metrics
//     (Simulate, SimulateSource, SimConfig);
//   - the synthetic server-workload generator standing in for the paper's
//     commercial suite (Workloads, GenerateStream, GenerateIterator);
//   - the sharded on-disk trace store and its slice addressing
//     (CreateTraceStore, OpenTraceStore, OpenTraceSlice, BuildTraceStore);
//   - the execution layer fanning simulation jobs out with
//     deterministic, submission-ordered results (Job, RunJobs, Backend,
//     LocalBackend, RunJobsOn);
//   - the declarative design-space sweep engine (SweepSpec, RunSweep,
//     BuildSweepSpec) and the experiment drivers regenerating every
//     table and figure of the paper's evaluation (RunExperiment,
//     ExperimentIDs), plus the schema-versioned results store used to
//     diff runs (SaveResults, DiffResults).
//
// Quick start:
//
//	res, err := pif.Simulate(pif.DefaultSimConfig(), pif.OLTPDB2(), pif.NewPIF(pif.DefaultPIFConfig()))
//	fmt.Printf("coverage=%.1f%% speedup base needed separately\n", res.Coverage()*100)
//
// Replay one window of a recorded trace store instead:
//
//	w, _ := pif.ParseTraceWindow("8M:2M")
//	res, err := pif.SimulateSource(cfg, wl, pif.SliceSource("apache.store", w), pif.NewPIF(pif.DefaultPIFConfig()))
//
// See README.md for the architecture overview and DESIGN.md (§9 for the
// Source/Backend pipeline) for the substitutions made relative to the
// paper's testbed.
package pif

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/expsvc"
	"repro/internal/prefetch"
	"repro/internal/remote"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/trace"
	"repro/internal/workload"
)

// PIF is the Proactive Instruction Fetch prefetcher (the paper's
// contribution): spatial + temporal compaction of the retire-order stream,
// a circular history buffer with an index of stream heads, and stream
// address buffers that replay recorded streams.
type PIF = core.PIF

// PIFConfig parameterizes a PIF instance.
type PIFConfig = core.Config

// Geometry is the spatial-region shape (preceding/succeeding blocks).
type Geometry = core.Geometry

// NewPIF builds a PIF prefetcher.
func NewPIF(cfg PIFConfig) *PIF { return core.New(cfg) }

// DefaultPIFConfig is the paper's configuration: 8-block regions
// (2 preceding + trigger + 5 succeeding), 32K-region history, 4 SABs with
// a 7-region window, and per-trap-level stream separation.
func DefaultPIFConfig() PIFConfig { return core.DefaultConfig() }

// Prefetcher is the pluggable prefetch-engine interface shared by PIF and
// the baselines.
type Prefetcher = prefetch.Prefetcher

// NewNextLine returns the aggressive next-line baseline prefetcher.
func NewNextLine(degree int) Prefetcher { return prefetch.NewNextLine(degree) }

// NewTIFS returns the Temporal Instruction Fetch Streaming baseline
// [MICRO 2008], which records and replays the L1-I miss stream.
func NewTIFS() Prefetcher { return prefetch.NewTIFS(prefetch.DefaultTIFSConfig()) }

// NoPrefetch is the no-prefetcher baseline.
func NoPrefetch() Prefetcher { return prefetch.None{} }

// PrefetcherNames lists the registered engine schemas ("none",
// "nextline", "tifs", "pif", and the PIF variants), in sorted order.
func PrefetcherNames() []string { return prefetch.Names() }

// PrefetcherByName constructs a fresh engine instance by registry name
// with every parameter at its schema default. Engines are stateful:
// call once per simulation job.
func PrefetcherByName(name string) (Prefetcher, error) { return prefetch.NewByName(name) }

// EngineSpec is the declarative, serializable form of a prefetch engine:
// a registry name plus explicit parameter overrides, validated against
// the engine's schema. It is the unit that crosses every boundary —
// sweep axes, job records, the remote wire, and the -engine CLI flag.
type EngineSpec = prefetch.Spec

// EngineSchema is one registered engine's declared parameter schema.
type EngineSchema = prefetch.Schema

// EngineParam describes one parameter of an engine schema: name, kind,
// default, and bounds.
type EngineParam = prefetch.Param

// EngineSchemas returns every registered engine's schema in sorted name
// order — the data behind `pifsim -list-engines`.
func EngineSchemas() []EngineSchema { return prefetch.Schemas() }

// ParseEngineSpec parses the CLI engine-spec form "name" or
// "name:k=v,k=v" (K/M suffixes are 1024 multiples for integer params)
// and validates it against the engine's schema.
func ParseEngineSpec(s string) (EngineSpec, error) { return prefetch.ParseSpec(s) }

// ValidateEngineSpec checks a spec against its engine's schema without
// constructing the engine.
func ValidateEngineSpec(spec EngineSpec) error { return prefetch.Validate(spec) }

// NewPrefetcherFromSpec resolves a spec into a fresh engine instance:
// schema defaults are applied, explicit params validated, and derived
// parameters (e.g. a pif budget_kb into history and index capacities)
// computed. Engines are stateful: call once per simulation job.
func NewPrefetcherFromSpec(spec EngineSpec) (Prefetcher, error) { return prefetch.Resolve(spec) }

// ResolvedEngineSpec returns the spec with every effective parameter
// made explicit (defaults applied, derivations computed) — what job
// records persist so stored runs compare like-for-like.
func ResolvedEngineSpec(spec EngineSpec) (EngineSpec, error) { return prefetch.Resolved(spec) }

// Workload describes one synthetic server workload.
type Workload = workload.Profile

// The six standard workloads of the paper's Table I (synthetic stand-ins;
// see DESIGN.md §4) plus the extended-footprint XL suite exercised by the
// design-space sweep artifacts.
var (
	OLTPDB2    = workload.OLTPDB2
	OLTPOracle = workload.OLTPOracle
	DSSQry2    = workload.DSSQry2
	DSSQry17   = workload.DSSQry17
	WebApache  = workload.WebApache
	WebZeus    = workload.WebZeus
	OLTPXL     = workload.OLTPXL
	WebXL      = workload.WebXL
)

// Workloads returns the six standard workloads in the paper's order.
func Workloads() []Workload { return workload.StandardSuite() }

// XLWorkloads returns the extended-footprint suite (≥4x the standard
// instruction footprints) used by the design-space sweeps.
func XLWorkloads() []Workload { return workload.XLSuite() }

// WorkloadByName resolves a standard or XL workload ("OLTP DB2", ...).
func WorkloadByName(name string) (Workload, error) { return workload.ByName(name) }

// Stream is an in-memory retire-order instruction trace.
type Stream = trace.Stream

// Record is one retired instruction.
type Record = trace.Record

// GenerateStream builds a workload's program image and emits n
// retire-order instructions.
func GenerateStream(w Workload, n uint64) (Stream, error) {
	return workload.GenerateStream(w, n)
}

// TraceIterator is the pull-model interface over a retire-order record
// stream (Next returns io.EOF at a clean end), implemented by trace
// readers, sharded stores, in-memory streams, and the live executor.
type TraceIterator = trace.Iterator

// TraceBatchIterator is the bulk-decode extension of TraceIterator:
// NextBatch fills a caller-owned record slice per call, eliminating the
// per-record interface-call overhead on replay hot paths. Every iterator
// in this package (readers, stores, slices, live executors) implements
// it natively.
type TraceBatchIterator = trace.BatchIterator

// BatchedTrace returns it as a TraceBatchIterator: iterators with a
// native NextBatch are returned unwrapped; anything else is adapted via
// a per-record loop with identical semantics.
func BatchedTrace(it TraceIterator) TraceBatchIterator { return trace.Batched(it) }

// WorkloadIterator streams a live executor's output with bounded memory;
// close it if abandoned before EOF.
type WorkloadIterator = workload.Iterator

// GenerateIterator builds w's program image and returns a streaming
// iterator over its retire-order stream — one executor Run phase per
// count, so GenerateIterator(w, warmup, measure) reproduces the
// simulator's live stream exactly.
func GenerateIterator(w Workload, phases ...uint64) (*WorkloadIterator, error) {
	prog, err := workload.BuildProgram(w)
	if err != nil {
		return nil, err
	}
	return workload.NewIterator(prog, phases...), nil
}

// TraceWindow addresses a half-open record range [Off, Off+Len) of a
// sharded trace store — the unit sweeps fan out over when a design point
// needs only a slice of a recorded trace.
type TraceWindow = trace.Window

// ParseTraceWindow parses an "off:len" window spec (K/M suffixes are
// 1024 multiples): "8192:1M" is the 1Mi-record window at record 8192.
func ParseTraceWindow(s string) (TraceWindow, error) { return trace.ParseWindow(s) }

// TraceSliceReader replays exactly one window of a sharded store,
// seeking through the store index so only the window's chunks are
// decoded. It implements TraceIterator.
type TraceSliceReader = trace.SliceReader

// OpenTraceSlice opens window w of the store at dir; a window outside
// the recorded range is a hard error, never a short iterator.
func OpenTraceSlice(dir string, w TraceWindow) (*TraceSliceReader, error) {
	return trace.OpenSlice(dir, w)
}

// Source names *what to simulate* — a live workload execution, a
// recorded trace store, or a window of one — independently of the
// prefetch engine simulating it and the Backend running it. Jobs carry
// Sources rather than open iterators, so every job (on any backend)
// opens its own private stream.
type Source = sim.Source

// SourceInfo describes an opened source: kind, workload, record budget,
// and (for on-disk sources) store path and window.
type SourceInfo = sim.SourceInfo

// LiveSource returns the source that executes w's program live. With no
// phases it is usable only as a Job source (the job's config supplies
// the warmup/measure split and the simulator runs the executor
// directly); with explicit phases it opens a streaming iterator
// reproducing Run(phases[0])+Run(phases[1])+... exactly.
func LiveSource(w Workload, phases ...uint64) Source { return sim.LiveSource(w, phases...) }

// StoreSource returns the source replaying the sharded trace store at
// dir from record 0.
func StoreSource(dir string) Source { return sim.StoreSource(dir) }

// SliceSource returns the source replaying only window w of the sharded
// store at dir (seeked through the index, so sweeping many windows of
// one trace never re-executes the workload and never decodes more than
// each window's chunks).
func SliceSource(dir string, w TraceWindow) Source { return sim.SliceSource(dir, w) }

// IteratorSource adapts a bare iterator factory to the Source interface.
func IteratorSource(open func() (TraceIterator, error)) Source { return sim.OpenerSource(open) }

// TraceIndex is a sharded trace store's metadata: workload, per-chunk
// record counts, and per-chunk base PCs.
type TraceIndex = trace.Index

// TraceStoreWriter writes a sharded on-disk trace store (trace.idx plus
// fixed-record-count chunk files).
type TraceStoreWriter = trace.StoreWriter

// TraceStoreReader replays a sharded store chunk by chunk; it implements
// TraceIterator with peak memory bounded by one chunk.
type TraceStoreReader = trace.StoreReader

// CreateTraceStore opens a sharded store for writing at dir
// (chunkRecords 0 selects the default chunk size).
func CreateTraceStore(dir, workload string, chunkRecords uint64) (*TraceStoreWriter, error) {
	return trace.CreateStore(dir, workload, chunkRecords)
}

// OpenTraceStore opens a sharded store for streaming replay.
func OpenTraceStore(dir string) (*TraceStoreReader, error) { return trace.OpenStore(dir) }

// ReadTraceIndex reads and validates a store's index without touching
// its chunks.
func ReadTraceIndex(dir string) (TraceIndex, error) { return trace.ReadIndex(dir) }

// BuildTraceStore drains any record iterator into a new sharded store.
// phases, when given, record the executor phase boundaries the source
// was generated with, so replays with a mismatched warmup/measure split
// are detectable (TraceIndex.PhaseCompatible).
func BuildTraceStore(dir, workload string, chunkRecords uint64, it TraceIterator, phases ...uint64) (uint64, error) {
	return trace.BuildStore(dir, workload, chunkRecords, it, phases...)
}

// SimulateSource runs one simulation fed by src — live execution, a
// trace store, or a slice of one; w supplies the result name and
// front-end seed. The source must supply at least warmup+measure
// records; a short source is a hard error, never a short run.
func SimulateSource(cfg SimConfig, w Workload, src Source, p Prefetcher) (SimResult, error) {
	return sim.RunWith(context.Background(), sim.Job{
		Config:   cfg,
		Workload: w,
		From:     src,
	}, p)
}

// SimulateTrace replays a recorded retire-order stream through the
// simulator instead of executing the workload; w supplies the name and
// front-end seed. The source must hold at least warmup+measure records.
//
// Deprecated: use SimulateSource with StoreSource/SliceSource (or
// IteratorSource around a custom iterator), which validate source
// metadata and manage the iterator's lifetime.
func SimulateTrace(cfg SimConfig, w Workload, src TraceIterator, p Prefetcher) (SimResult, error) {
	return sim.RunWith(context.Background(), sim.Job{
		Config:   cfg,
		Workload: w,
		Source:   src,
	}, p)
}

// System is the simulated machine description (the paper's Table I).
type System = config.System

// DefaultSystem returns the Table I configuration.
func DefaultSystem() System { return config.Default() }

// SimConfig parameterizes a simulation run.
type SimConfig = sim.Config

// SimResult is the outcome of a run (coverage, UIPC, cache statistics).
type SimResult = sim.Result

// DefaultSimConfig returns a laptop-scale analog of the paper's
// methodology: warmed structures, then a measured interval.
func DefaultSimConfig() SimConfig { return sim.DefaultConfig() }

// Simulate runs one workload through the front-end, L1-I, and prefetcher
// models and returns the measured-interval metrics.
func Simulate(cfg SimConfig, w Workload, p Prefetcher) (SimResult, error) {
	return sim.Run(cfg, w, p)
}

// Job names one simulation for the parallel execution engine: a workload,
// a configuration, and a declarative engine spec.
type Job = runner.Job

// JobResult is the outcome of one job, tagged with its submission index.
type JobResult = runner.Result

// JobProgress reports one completed job to a Pool's progress callback.
type JobProgress = runner.Progress

// Pool fans simulation jobs out over a bounded worker pool with context
// cancellation and progress callbacks; results come back in submission
// order, so rendered tables are byte-identical to serial runs. It is the
// one-shot convenience front door over Backend/RunJobsOn.
type Pool = runner.Pool

// RunJobs executes jobs over a pool of the given width (<= 0 means
// GOMAXPROCS) and returns results in submission order.
func RunJobs(ctx context.Context, jobs []Job, workers int) ([]JobResult, error) {
	return runner.Run(ctx, jobs, workers)
}

// Backend names *where jobs run* — the third axis of the pipeline API,
// orthogonal to the job's Source (what to simulate) and prefetcher
// factory (with which engine). The protocol is Submit/Results/Close;
// LocalBackend is the in-process implementation, and a multi-node
// backend shipping Job/JobResult as its wire unit drops in without
// touching any driver (select it via ExperimentOptions.Backend or
// SweepPoolEngine.Backend).
type Backend = runner.Backend

// LocalBackend executes jobs over a bounded in-process worker pool.
type LocalBackend = runner.LocalBackend

// NewLocalBackend starts a local backend with the given worker count
// (<= 0 means GOMAXPROCS); Close it to release the workers.
func NewLocalBackend(workers int) *LocalBackend { return runner.NewLocalBackend(workers) }

// ErrBackendClosed is the sentinel every Backend's Submit returns after
// Close — "this backend is shutting down", distinct from a job
// rejection or a cancellation, so dispatchers can reroute instead of
// failing the job.
var ErrBackendClosed = runner.ErrBackendClosed

// DialBackend resolves a -backend CLI spec into a running Backend:
// "local" (or "") is an in-process LocalBackend with the given worker
// count, and "remote@ADDR" dials the pifcoord coordinator at ADDR and
// opens a run on it (jobs fan out to its registered pifworker fleet;
// workers ignore the local worker count). The caller must Close the
// backend.
//
// Remote jobs travel declaratively: the workload must resolve through
// its registry, the engine spec (name plus params — tuned cells
// included) is validated against the engine schemas before it ships,
// and sources must be live/store/slice values (store paths are resolved
// on the worker). Jobs carrying process-local state — an instrument
// hook, an observer, a custom source — are refused at Submit with a
// descriptive error.
func DialBackend(spec string, workers int) (Backend, error) {
	return DialBackendAuth(spec, workers, "")
}

// DialBackendAuth is DialBackend against a token-protected coordinator
// (pifcoord -auth-token): remote requests carry the bearer token. An
// empty token is plain DialBackend; local backends ignore the token.
func DialBackendAuth(spec string, workers int, token string) (Backend, error) {
	switch {
	case spec == "" || spec == "local":
		return NewLocalBackend(workers), nil
	case strings.HasPrefix(spec, "remote@"):
		addr := strings.TrimPrefix(spec, "remote@")
		if addr == "" {
			return nil, fmt.Errorf("pif: -backend remote@ADDR needs a coordinator address")
		}
		return remote.DialAuth(addr, token)
	default:
		return nil, fmt.Errorf("pif: unknown backend %q (have local, remote@ADDR)", spec)
	}
}

// JobProgressFunc receives one serialized callback per finished job.
type JobProgressFunc = func(JobProgress)

// RunJobsOn drives one batch of jobs through any backend: submission
// while collecting, serialized progress callbacks, results in
// submission order, cancellation via ctx. It does not Close the backend.
func RunJobsOn(ctx context.Context, b Backend, jobs []Job, onProgress JobProgressFunc) ([]JobResult, error) {
	return runner.RunOn(ctx, b, jobs, onProgress)
}

// ShardPlan is one shard of a sharded single-trace replay: the store
// window it reads plus its warmup/measure split.
type ShardPlan = sim.ShardPlan

// PlanShardedReplay tiles cfg's measured interval into shard plans
// (exact = full-prefix warmup for lossless counter stitching; otherwise
// fixed-length warmup with linear total work).
func PlanShardedReplay(cfg SimConfig, shards int, exact bool) ([]ShardPlan, error) {
	return sim.SplitReplay(cfg, shards, exact)
}

// MergeShardResults stitches per-shard results (in shard order) into one
// whole-run result: event counters sum losslessly, FE statistics come
// from the last shard, and timing is recomputed within tolerance. See
// DESIGN.md §10 for the stitching rules.
func MergeShardResults(shards []SimResult) (SimResult, error) {
	return sim.MergeShardResults(shards)
}

// ShardedReplayOptions configures a window-sharded parallel replay of
// one recorded trace store.
type ShardedReplayOptions = runner.ShardedOptions

// ShardedReplayResult is the stitched outcome plus the per-shard results
// and plans.
type ShardedReplayResult = runner.ShardedResult

// ShardedReplay splits one trace store's measured interval into parallel
// windows, replays each as its own job, and stitches the results —
// parallel simulation of a single trace on one machine or any Backend.
func ShardedReplay(ctx context.Context, opt ShardedReplayOptions) (ShardedReplayResult, error) {
	return runner.ShardedReplay(ctx, opt)
}

// ExperimentOptions scale the evaluation harness.
type ExperimentOptions = experiments.Options

// ExperimentReport is one regenerated table or figure.
type ExperimentReport = experiments.Report

// DefaultExperimentOptions is the full-scale evaluation configuration.
func DefaultExperimentOptions() ExperimentOptions { return experiments.DefaultOptions() }

// QuickExperimentOptions is a reduced-scale configuration for smoke runs.
func QuickExperimentOptions() ExperimentOptions { return experiments.QuickOptions() }

// ExperimentIDs lists the regenerable artifacts (fig2..fig10, table1).
func ExperimentIDs() []string { return experiments.IDs() }

// ExperimentEnv caches per-workload artifacts (program images, retire
// streams) across experiment runs; one environment can regenerate many
// artifacts without rebuilding traces. Safe for concurrent jobs.
type ExperimentEnv = experiments.Env

// NewExperimentEnv builds an environment whose runs are governed by ctx:
// cancellation aborts in-flight simulation jobs.
func NewExperimentEnv(ctx context.Context, opts ExperimentOptions) *ExperimentEnv {
	return experiments.NewEnvContext(ctx, opts)
}

// RunExperiment regenerates one of the paper's tables or figures.
func RunExperiment(opts ExperimentOptions, id string) (ExperimentReport, error) {
	return experiments.Run(experiments.NewEnv(opts), id)
}

// RunExperimentIn regenerates one artifact in an existing environment,
// reusing its caches.
func RunExperimentIn(env *ExperimentEnv, id string) (ExperimentReport, error) {
	return experiments.Run(env, id)
}

// RunAllExperiments regenerates every table and figure.
func RunAllExperiments(opts ExperimentOptions) ([]ExperimentReport, error) {
	return experiments.RunAll(experiments.NewEnv(opts))
}

// RunAllExperimentsContext is RunAllExperiments under a context.
func RunAllExperimentsContext(ctx context.Context, opts ExperimentOptions) ([]ExperimentReport, error) {
	return experiments.RunAll(experiments.NewEnvContext(ctx, opts))
}

// ResultsSchemaVersion is the version of the structured-report JSON schema
// (see internal/report; bumped on non-additive changes).
const ResultsSchemaVersion = report.SchemaVersion

// ResultsArtifact is the serializable form of one experiment artifact:
// rendered text plus the driver's typed result as canonical JSON.
type ResultsArtifact = report.Artifact

// ResultsRun is the metadata sidecar of one stored evaluation pass
// (options, suite, per-artifact timings).
type ResultsRun = report.Run

// ResultsTiming is one artifact's wall-clock duration inside run metadata.
type ResultsTiming = report.Timing

// ResultsStore addresses stored runs as <root>/<run-id>/<artifact>.json.
type ResultsStore = report.Store

// ResultsTolerance bounds acceptable per-metric drift (absolute OR
// relative).
type ResultsTolerance = report.Tolerance

// ResultsTolerances selects tolerances by metric-path prefix.
type ResultsTolerances = report.Tolerances

// ResultsDiff is the per-metric comparison of two stored runs.
type ResultsDiff = report.Diff

// SweepSpec declares a design-space sweep: named parameter axes
// (workloads, engine variants, system mutations, sim options) whose
// cross-product expands into a grid of keyed simulation jobs.
type SweepSpec = sweep.Spec

// SweepAxis is one named dimension of a sweep: ordered, keyed values.
type SweepAxis = sweep.Axis

// SweepValue is one keyed setting of an axis.
type SweepValue = sweep.Value

// SweepSettings is the accumulated configuration of one grid cell.
type SweepSettings = sweep.Settings

// SweepPoint locates one grid cell (axis name -> value key).
type SweepPoint = sweep.Point

// SweepCell is one point of an expanded design space.
type SweepCell = sweep.Cell

// SweepGrid is an expanded (and, after a run, executed) design space,
// addressable by axis values.
type SweepGrid = sweep.Grid

// SweepEngine abstracts the execution environment a sweep runs through
// (implemented by *ExperimentEnv and SweepPoolEngine).
type SweepEngine = sweep.Engine

// SweepPoolEngine runs sweeps over a bare worker pool, outside an
// experiment environment.
type SweepPoolEngine = sweep.PoolEngine

// SweepWorkloadAxis builds the canonical workload axis of a sweep.
func SweepWorkloadAxis(name string, wls []Workload) SweepAxis {
	return sweep.WorkloadAxis(name, wls)
}

// SweepEngineAxis builds a prefetch-engine axis from registry names
// (each cell runs that engine at its schema defaults).
func SweepEngineAxis(name string, engines ...string) SweepAxis {
	return sweep.EngineAxis(name, engines...)
}

// SweepEngineSpecAxis builds a prefetch-engine axis from full engine
// specs — tuned variants sweep like any other value. names supplies
// optional display labels (empty or short slices fall back to the
// spec's canonical string form).
func SweepEngineSpecAxis(name string, specs []EngineSpec, names []string) SweepAxis {
	return sweep.EngineSpecAxis(name, specs, names)
}

// SweepEngineParamAxis builds an axis sweeping one integer engine
// parameter (e.g. "budget_kb" over 8..512) on top of whatever engine
// the cell already carries; key and label derive each value's cell key
// and display name (label nil falls back to key).
func SweepEngineParamAxis(axisName, param string, key, label func(v int) string, ints []int) SweepAxis {
	return sweep.EngineParamAxis(axisName, param, key, label, ints)
}

// RunSweep expands a spec and executes every cell through the engine's
// worker pool, returning the grid with results attached.
func RunSweep(eng SweepEngine, spec SweepSpec) (*SweepGrid, error) {
	return sweep.Run(eng, spec)
}

// ExpandSweep expands a spec into its grid of cells without running it.
func ExpandSweep(spec SweepSpec) (*SweepGrid, error) { return spec.Expand() }

// BuildSweepSpec constructs an ad-hoc sweep spec from CLI-style axis
// specifications ("workload=xl", "engine=pif,tifs", "budget=32,256",
// "source=live,slice@0:1M", ...) plus optional full engine specs
// ("pif:budget_kb=32", repeatable -engine flags) that become the engine
// axis; see the `experiments sweep` mode. The environment resolves
// env-backed record sources (spilled stores, trace windows) and supplies
// the base configuration; malformed axis or engine specs are usage
// errors naming the offending token.
func BuildSweepSpec(env *ExperimentEnv, name string, axisSpecs, engineSpecs []string) (SweepSpec, error) {
	return experiments.BuildSweep(env, name, axisSpecs, engineSpecs)
}

// ExperimentArtifacts converts regenerated reports into schema artifacts,
// preserving order.
func ExperimentArtifacts(reps []ExperimentReport) ([]ResultsArtifact, error) {
	return experiments.Artifacts(reps)
}

// SaveResults writes one run directory: run.json plus <artifact>.json per
// artifact.
func SaveResults(dir string, run ResultsRun, artifacts []ResultsArtifact) error {
	return report.Save(dir, run, artifacts)
}

// LoadResults reads a run directory written by SaveResults.
func LoadResults(dir string) (ResultsRun, []ResultsArtifact, error) {
	return report.Load(dir)
}

// DiffResults compares two artifact sets metric by metric under the given
// tolerances.
func DiffResults(a, b []ResultsArtifact, tol ResultsTolerances) ResultsDiff {
	return report.DiffArtifacts(a, b, tol)
}

// DefaultResultTolerances absorbs float noise (1e-12 absolute, 1e-9
// relative) while failing on any behavioral shift.
func DefaultResultTolerances() ResultsTolerances { return report.DefaultTolerances() }

// ResultsJobResult is the schema-versioned persisted form of one raw
// per-job simulation result (one sweep-grid cell), stored as
// results/<run-id>/jobs/<key>.json.
type ResultsJobResult = report.JobResult

// NewResultsArtifact builds a schema-stamped artifact from any
// JSON-marshalable result (e.g. a sweep grid summary).
func NewResultsArtifact(id, title, text string, data any) (ResultsArtifact, error) {
	return report.NewArtifact(id, title, text, data)
}

// NewJobResult builds a schema-stamped per-job result.
func NewJobResult(key, label string, point map[string]string, data any) (ResultsJobResult, error) {
	return report.NewJobResult(key, label, point, data)
}

// SaveJobResults writes one jobs/<key>.json per raw per-job result inside
// a run directory (no-op for an empty slice).
func SaveJobResults(runDir string, jobs []ResultsJobResult) error {
	return report.SaveJobResults(runDir, jobs)
}

// LoadJobResults reads a run directory's raw per-job results, sorted by
// key (empty when the run persisted none).
func LoadJobResults(runDir string) ([]ResultsJobResult, error) {
	return report.LoadJobResults(runDir)
}

// DiffJobResults compares two per-job result sets at per-job granularity
// under the given tolerances (metric paths rooted at "jobs/<key>").
func DiffJobResults(a, b []ResultsJobResult, tol ResultsTolerances) ResultsDiff {
	return report.DiffJobResults(a, b, tol)
}

// ResultsDiffReport is the machine-readable form of one comparison: the
// diff plus its `experiments diff` exit-code verdict (0/1/3) and the
// rendered text. It is the payload of `experiments diff -json` and of
// the experiment service's diff endpoint — one struct, two transports.
type ResultsDiffReport = report.DiffReport

// NewResultsDiffReport packages a computed diff with its verdict and
// rendering; a and b name the two sides (run IDs or local paths).
func NewResultsDiffReport(a, b string, d ResultsDiff) ResultsDiffReport {
	return report.NewDiffReport(a, b, d)
}

// ResultsRunInfo is one stored run's listing entry (ID, creation time,
// artifact count).
type ResultsRunInfo = report.RunInfo

// ListResults describes every run stored under root, sorted by creation
// time; it reads only each run's metadata sidecar, so listing a large
// corpus stays cheap.
func ListResults(root string) ([]ResultsRunInfo, error) {
	return report.Store{Root: root}.List()
}

// ServiceRequest is one sweep submission to the experiment service
// (cmd/pifexpd): the fields mirror the `experiments sweep` CLI flags and
// feed the same spec parser, so axis/engine/shard semantics are
// identical in both transports.
type ServiceRequest = expsvc.Request

// ServiceRunStatus is one service run as the API reports it: the
// persisted database record (state machine queued → running →
// done/failed) plus live job progress while running.
type ServiceRunStatus = expsvc.Status

// ServiceDiffSide names one side of a service diff: a run in the
// service's database (RunID) or an inline artifact/job set — how the
// CLI diffs a service run against a local -out directory.
type ServiceDiffSide = expsvc.DiffSide

// ServiceClient is the HTTP client of a pifexpd experiment service,
// behind the `experiments submit|status|diff -svc` CLI modes.
type ServiceClient = expsvc.Client

// DialExperimentService connects to a pifexpd service at addr,
// verifying reachability and wire version. token authenticates against
// a -auth-token protected service ("" for an open one).
func DialExperimentService(addr, token string) (*ServiceClient, error) {
	return expsvc.DialService(addr, token)
}
